use crate::process::{JobSpan, Process, StepEvent};
use crate::registers::{MemWork, Registers};
use crate::sched::{Decision, SchedView, Scheduler};
use crate::verify::{at_most_once_violations, distinct_jobs, Violation};

/// Lifecycle of a process inside an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifeState {
    /// Still taking steps.
    Running,
    /// Reached its final state (`STATUS = end`).
    Terminated,
    /// Stopped by the adversary (`stop_p`).
    Crashed,
}

/// A process plus its lifecycle bookkeeping, visible to schedulers.
#[derive(Debug, Clone)]
pub struct Slot<P> {
    /// The automaton itself (schedulers are omniscient and may inspect it).
    pub process: P,
    /// Current lifecycle state.
    pub state: LifeState,
    /// Actions executed by this process so far.
    pub steps: u64,
}

/// One `do` action: which process performed which jobs at which step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerformRecord {
    /// Performing process (1-based pid).
    pub pid: usize,
    /// Jobs performed by the action.
    pub span: JobSpan,
    /// Global step index at which the action executed.
    pub step: u64,
}

/// One recorded action of a traced execution (see
/// [`Engine::with_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Global step index (1-based, matching [`PerformRecord::step`]).
    pub step: u64,
    /// Acting process (1-based pid), or `None` for a crash decision.
    pub pid: Option<usize>,
    /// What happened: `Some(event)` for a step, `None` for a crash.
    pub event: Option<StepEvent>,
}

/// Caps on an execution, to keep harnesses bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineLimits {
    /// Maximum total actions before the engine gives up.
    ///
    /// KKβ is wait-free (Lemma 4.3), so hitting this limit with a fair
    /// scheduler indicates a bug; the execution is returned with
    /// `completed == false` so tests can assert on it.
    pub max_steps: u64,
}

impl Default for EngineLimits {
    fn default() -> Self {
        Self {
            max_steps: 200_000_000,
        }
    }
}

impl EngineLimits {
    /// Limits with the given maximum step count.
    pub fn with_max_steps(max_steps: u64) -> Self {
        Self { max_steps }
    }
}

/// The record of one complete execution `α`.
///
/// Equality is field-for-field over every recorded observable (perform
/// records with their step indices, work accounting, per-process step
/// counts, trace) — what the scenario-equivalence and batching-equivalence
/// suites assert between a legacy runner and its lowered
/// [`ScenarioSpec`](crate::ScenarioSpec), and between the fast path and its
/// single-step reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// Every `do` action, in execution order.
    pub performed: Vec<PerformRecord>,
    /// Total actions executed.
    pub total_steps: u64,
    /// Pids crashed by the adversary, in crash order.
    pub crashed: Vec<usize>,
    /// Pids restarted after a crash, in restart order (the crash–restart
    /// lifecycle of the durable-storage model; empty without restarts).
    pub restarted: Vec<usize>,
    /// `true` when every non-crashed process terminated within the limits.
    pub completed: bool,
    /// Shared-memory traffic of the whole execution.
    pub mem_work: MemWork,
    /// Local basic operations summed over all processes.
    pub local_work: u64,
    /// Actions executed per process (index `i` holds pid `i + 1`).
    pub per_proc_steps: Vec<u64>,
    /// Recorded actions, when tracing was enabled (capped; empty otherwise).
    pub trace: Vec<TraceEntry>,
}

impl Execution {
    /// `Do(α)`: the number of *distinct* jobs performed (Definition 2.1).
    pub fn effectiveness(&self) -> u64 {
        distinct_jobs(self.performed.iter().map(|r| r.span))
    }

    /// At-most-once violations: jobs performed more than once
    /// (empty iff the execution satisfies Definition 2.2).
    pub fn violations(&self) -> Vec<Violation> {
        at_most_once_violations(self.performed.iter().map(|r| r.span))
    }

    /// `(effectiveness, violations)` in one dense pass — what report
    /// builders should call instead of [`effectiveness`](Self::effectiveness)
    /// plus [`violations`](Self::violations), which each rebuild a hash
    /// ledger over the full perform history (see
    /// [`perform_summary`](crate::perform_summary)).
    pub fn summary(&self) -> (u64, Vec<Violation>) {
        crate::verify::perform_summary(self.performed.iter().map(|r| r.span))
    }

    /// Total work: shared accesses plus local basic operations
    /// (Definition 2.5).
    pub fn work(&self) -> u64 {
        self.mem_work.total() + self.local_work
    }

    /// Number of crashes.
    pub fn crash_count(&self) -> usize {
        self.crashed.len()
    }
}

/// Runs a fleet of automatons over a register file under a scheduler.
///
/// The engine is the executable form of the model of §2.1: an execution is
/// an alternating sequence of states and actions, where each action is taken
/// by the process the adversary picks.
///
/// # Examples
///
/// ```
/// use amo_sim::{Engine, EngineLimits, RoundRobin, VecRegisters};
/// use amo_sim::testing::PerformOnceProcess;
///
/// let mem = VecRegisters::new(0);
/// let procs = vec![PerformOnceProcess::new(1, 42)];
/// let exec = Engine::new(mem, procs, RoundRobin::new()).run(EngineLimits::default());
/// assert_eq!(exec.effectiveness(), 1);
/// assert!(exec.violations().is_empty());
/// ```
#[derive(Debug)]
pub struct Engine<R, P, S> {
    mem: R,
    slots: Vec<Slot<P>>,
    scheduler: S,
    max_crashes: usize,
    trace_cap: usize,
    force_single_step: bool,
}

impl<R, P, S> Engine<R, P, S>
where
    R: Registers,
    P: Process<R>,
    S: Scheduler<P>,
{
    /// Creates an engine over `mem` for the given processes and scheduler.
    ///
    /// The default crash budget is `m − 1` (the model's `f < m`).
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or pids are not exactly `1..=m` in
    /// order.
    pub fn new(mem: R, processes: Vec<P>, scheduler: S) -> Self {
        assert!(!processes.is_empty(), "need at least one process");
        for (i, p) in processes.iter().enumerate() {
            assert_eq!(p.pid(), i + 1, "processes must be ordered by pid 1..=m");
        }
        let max_crashes = processes.len() - 1;
        let slots = processes
            .into_iter()
            .map(|p| Slot {
                process: p,
                state: LifeState::Running,
                steps: 0,
            })
            .collect();
        Self {
            mem,
            slots,
            scheduler,
            max_crashes,
            trace_cap: 0,
            force_single_step: false,
        }
    }

    /// Disables the macro-stepping fast path: scheduler quanta are still
    /// granted, but executed through individual [`Process::step`] calls with
    /// full per-action bookkeeping.
    ///
    /// This is the *reference* semantics the fast path must reproduce — the
    /// equivalence property tests run every workload through both modes and
    /// require identical [`Execution`]s. It is also occasionally useful for
    /// debugging a batched run.
    pub fn single_step(mut self) -> Self {
        self.force_single_step = true;
        self
    }

    /// Enables action tracing, recording up to `cap` entries (the first
    /// `cap` actions of the execution).
    pub fn with_trace(mut self, cap: usize) -> Self {
        self.trace_cap = cap;
        self
    }

    /// Sets the crash budget `f` (clamped to `m − 1`).
    pub fn with_max_crashes(mut self, f: usize) -> Self {
        self.max_crashes = f.min(self.slots.len() - 1);
        self
    }

    /// Read access to the register file (e.g. to inspect final memory).
    pub fn mem(&self) -> &R {
        &self.mem
    }

    /// Runs to quiescence (every process terminated or crashed) or until the
    /// step limit, returning the recorded [`Execution`].
    ///
    /// # Panics
    ///
    /// Panics if the scheduler returns an invalid decision (stepping a
    /// non-running slot, crashing beyond the budget) — that is a harness
    /// bug, not an algorithm failure.
    pub fn run(self, limits: EngineLimits) -> Execution {
        self.run_into(limits).0
    }

    /// Like [`run`](Self::run), but also returns the final process slots so
    /// callers can inspect terminal automaton state (IterStep outputs,
    /// collision instrumentation, …).
    pub fn run_into(self, limits: EngineLimits) -> (Execution, Vec<Slot<P>>) {
        let (exec, slots, _mem) = self.run_full(limits);
        (exec, slots)
    }

    /// Like [`run_into`](Self::run_into), but additionally hands back the
    /// register file, so callers can certify final memory contents (e.g.
    /// the Write-All array).
    pub fn run_full(mut self, limits: EngineLimits) -> (Execution, Vec<Slot<P>>, R) {
        let mut performed = Vec::new();
        let mut crashed = Vec::new();
        let mut restarted = Vec::new();
        let mut total_steps: u64 = 0;
        let mut completed = true;
        let mut trace: Vec<TraceEntry> = Vec::new();
        // Tracing needs one entry per action, so it forces single-step
        // granularity; the hot (trace-disabled) path skips trace bookkeeping
        // entirely.
        let tracing = self.trace_cap > 0;
        // Liveness is tracked by counter — the historical `slots.iter().any`
        // scan cost O(m) per action and dominated small-step loops.
        let mut running = self.slots.len();

        loop {
            let view = SchedView {
                slots: &self.slots,
                total_steps,
                crashes: crashed.len(),
                max_crashes: self.max_crashes,
            };
            // The run stays alive with zero running processes only while the
            // scheduler still intends to restart a crashed one.
            if running == 0 && !self.scheduler.pending_restart(&view) {
                break;
            }
            if total_steps >= limits.max_steps {
                completed = false;
                break;
            }
            let decision = self.scheduler.decide(&view);
            match decision {
                Decision::Step(i) => {
                    // The quantum the scheduler grants this decision,
                    // clamped so the step cap cannot be overshot.
                    let budget = if tracing {
                        1
                    } else {
                        self.scheduler
                            .quantum(&view, i)
                            .max(1)
                            .min(limits.max_steps - total_steps)
                    };
                    let slot = &mut self.slots[i];
                    assert_eq!(
                        slot.state,
                        LifeState::Running,
                        "scheduler stepped non-running pid {}",
                        i + 1
                    );
                    // Durable backends attribute the journal records of the
                    // coming actions to this process's write-behind buffer.
                    self.mem.note_actor(i + 1);
                    if budget == 1 || self.force_single_step {
                        // Reference path: per-action dispatch. Also used by
                        // every scheduler that keeps the default quantum of
                        // 1 (all adversarial schedulers), and when tracing.
                        let mut consumed = 0;
                        let mut terminated = false;
                        while consumed < budget && !terminated {
                            let event = slot.process.step(&self.mem);
                            consumed += 1;
                            if tracing && trace.len() < self.trace_cap {
                                trace.push(TraceEntry {
                                    step: total_steps + consumed,
                                    pid: Some(i + 1),
                                    event: Some(event),
                                });
                            }
                            match event {
                                StepEvent::Perform { span } => {
                                    performed.push(PerformRecord {
                                        pid: i + 1,
                                        span,
                                        step: total_steps + consumed,
                                    });
                                    // A `do` is the commit point: everything
                                    // this process wrote before performing
                                    // must be on stable storage.
                                    self.mem.perform_barrier();
                                }
                                StepEvent::Terminated => terminated = true,
                                StepEvent::Local
                                | StepEvent::Read { .. }
                                | StepEvent::CachedRead { .. }
                                | StepEvent::Write { .. }
                                | StepEvent::Rmw { .. } => {}
                            }
                        }
                        slot.steps += consumed;
                        total_steps += consumed;
                        if terminated {
                            slot.state = LifeState::Terminated;
                            running -= 1;
                            // Clean shutdown flushes the write-behind buffer.
                            self.mem.perform_barrier();
                        }
                        self.scheduler.note_consumed(i, consumed);
                    } else {
                        // Macro-stepping fast path: hand the whole quantum
                        // to the process as batched calls.
                        let mut consumed = 0;
                        let mut terminated = false;
                        while consumed < budget && !terminated {
                            let out = slot.process.step_many(&self.mem, budget - consumed);
                            debug_assert!(
                                out.steps >= 1 && consumed + out.steps <= budget,
                                "step_many overran its budget"
                            );
                            for &(offset, span) in &out.performed {
                                performed.push(PerformRecord {
                                    pid: i + 1,
                                    span,
                                    step: total_steps + consumed + offset + 1,
                                });
                            }
                            if !out.performed.is_empty() {
                                // Batched flush granularity: one barrier per
                                // perform-carrying batch. Fault-free this is
                                // indistinguishable from the per-perform
                                // barrier of the single-step path.
                                self.mem.perform_barrier();
                            }
                            consumed += out.steps;
                            terminated = out.terminated;
                        }
                        slot.steps += consumed;
                        total_steps += consumed;
                        if terminated {
                            slot.state = LifeState::Terminated;
                            running -= 1;
                            // Clean shutdown flushes the write-behind buffer.
                            self.mem.perform_barrier();
                        }
                        self.scheduler.note_consumed(i, consumed);
                    }
                }
                Decision::Crash(i) => {
                    assert!(
                        crashed.len() < self.max_crashes,
                        "scheduler exceeded crash budget f = {}",
                        self.max_crashes
                    );
                    let slot = &mut self.slots[i];
                    assert_eq!(
                        slot.state,
                        LifeState::Running,
                        "scheduler crashed non-running pid {}",
                        i + 1
                    );
                    slot.state = LifeState::Crashed;
                    running -= 1;
                    crashed.push(i + 1);
                    // Durable backends lose (part of) the crasher's
                    // unflushed write-behind suffix and recover the file
                    // from the journal; volatile backends ignore this.
                    self.mem.crash_blackout(i + 1);
                    if tracing && trace.len() < self.trace_cap {
                        trace.push(TraceEntry {
                            step: total_steps,
                            pid: Some(i + 1),
                            event: None,
                        });
                    }
                }
                Decision::Restart(i) => {
                    let slot = &mut self.slots[i];
                    assert_eq!(
                        slot.state,
                        LifeState::Crashed,
                        "scheduler restarted non-crashed pid {}",
                        i + 1
                    );
                    // A restart is not an action: no step counters advance
                    // and no trace entry is recorded. The process rebuilds
                    // its volatile state from shared memory.
                    slot.process.on_restart(&self.mem);
                    slot.state = LifeState::Running;
                    running += 1;
                    restarted.push(i + 1);
                }
            }
        }

        let execution = Execution {
            performed,
            total_steps,
            crashed,
            restarted,
            completed,
            mem_work: self.mem.work(),
            local_work: self.slots.iter().map(|s| s.process.local_work()).sum(),
            per_proc_steps: self.slots.iter().map(|s| s.steps).collect(),
            trace,
        };
        (execution, self.slots, self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::VecRegisters;
    use crate::sched::RoundRobin;
    use crate::testing::{PerformOnceProcess, WriterProcess};

    #[test]
    fn writers_complete_and_account_steps() {
        let mem = VecRegisters::new(2);
        let procs = vec![WriterProcess::new(1, 0, 4), WriterProcess::new(2, 1, 2)];
        let exec = Engine::new(mem, procs, RoundRobin::new()).run(EngineLimits::default());
        assert!(exec.completed);
        assert_eq!(
            exec.per_proc_steps,
            vec![5, 3],
            "k writes + 1 terminating step"
        );
        assert_eq!(exec.total_steps, 8);
        assert_eq!(exec.mem_work.writes, 6);
        assert_eq!(exec.crash_count(), 0);
    }

    #[test]
    fn perform_records_carry_pid_and_step() {
        let mem = VecRegisters::new(0);
        let procs = vec![
            PerformOnceProcess::new(1, 9),
            PerformOnceProcess::new(2, 10),
        ];
        let exec = Engine::new(mem, procs, RoundRobin::new()).run(EngineLimits::default());
        assert_eq!(exec.performed.len(), 2);
        assert_eq!(exec.performed[0].pid, 1);
        assert_eq!(exec.performed[0].span, JobSpan::single(9));
        assert_eq!(exec.performed[1].pid, 2);
        assert_eq!(exec.effectiveness(), 2);
        assert!(exec.violations().is_empty());
    }

    #[test]
    fn duplicate_performs_are_flagged() {
        let mem = VecRegisters::new(0);
        let procs = vec![PerformOnceProcess::new(1, 5), PerformOnceProcess::new(2, 5)];
        let exec = Engine::new(mem, procs, RoundRobin::new()).run(EngineLimits::default());
        let v = exec.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].job, 5);
        assert_eq!(v[0].count, 2);
        assert_eq!(exec.effectiveness(), 1, "distinct jobs only");
    }

    #[test]
    fn step_limit_reports_incomplete() {
        let mem = VecRegisters::new(1);
        let procs = vec![WriterProcess::new(1, 0, 1_000)];
        let exec = Engine::new(mem, procs, RoundRobin::new()).run(EngineLimits::with_max_steps(10));
        assert!(!exec.completed);
        assert_eq!(exec.total_steps, 10);
    }

    #[test]
    #[should_panic(expected = "ordered by pid")]
    fn misordered_pids_rejected() {
        let mem = VecRegisters::new(1);
        let procs = vec![WriterProcess::new(2, 0, 1)];
        let _ = Engine::new(mem, procs, RoundRobin::new());
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_fleet_rejected() {
        let mem = VecRegisters::new(0);
        let _ = Engine::new(mem, Vec::<WriterProcess>::new(), RoundRobin::new());
    }

    #[test]
    #[should_panic(expected = "crash budget")]
    fn crash_budget_enforced() {
        let mem = VecRegisters::new(2);
        let procs = vec![WriterProcess::new(1, 0, 1), WriterProcess::new(2, 1, 1)];
        // f defaults to m - 1 = 1; crashing both must panic.
        let mut toggle = 0usize;
        let sched = move |_: &SchedView<'_, WriterProcess>| {
            let d = Decision::Crash(toggle);
            toggle += 1;
            d
        };
        let _ = Engine::new(mem, procs, sched).run(EngineLimits::default());
    }

    #[test]
    fn crashed_process_stops_stepping() {
        let mem = VecRegisters::new(2);
        let procs = vec![WriterProcess::new(1, 0, 100), WriterProcess::new(2, 1, 1)];
        let mut first = true;
        let sched = move |view: &SchedView<'_, WriterProcess>| {
            if first {
                first = false;
                Decision::Crash(0)
            } else {
                Decision::Step(view.running().next().expect("pid 2 still runs"))
            }
        };
        let exec = Engine::new(mem, procs, sched).run(EngineLimits::default());
        assert_eq!(exec.crashed, vec![1]);
        assert_eq!(exec.per_proc_steps[0], 0);
        assert!(exec.completed, "surviving process terminates");
    }

    #[test]
    fn trace_disabled_by_default() {
        let mem = VecRegisters::new(1);
        let exec = Engine::new(mem, vec![WriterProcess::new(1, 0, 3)], RoundRobin::new())
            .run(EngineLimits::default());
        assert!(exec.trace.is_empty());
    }

    #[test]
    fn trace_records_steps_in_order() {
        let mem = VecRegisters::new(1);
        let exec = Engine::new(mem, vec![WriterProcess::new(1, 0, 2)], RoundRobin::new())
            .with_trace(100)
            .run(EngineLimits::default());
        assert_eq!(exec.trace.len(), 3, "2 writes + 1 terminate");
        assert_eq!(exec.trace[0].step, 1);
        assert_eq!(exec.trace[0].pid, Some(1));
        assert!(matches!(
            exec.trace[0].event,
            Some(StepEvent::Write { cell: 0 })
        ));
        assert!(matches!(exec.trace[2].event, Some(StepEvent::Terminated)));
    }

    #[test]
    fn trace_is_capped() {
        let mem = VecRegisters::new(1);
        let exec = Engine::new(mem, vec![WriterProcess::new(1, 0, 50)], RoundRobin::new())
            .with_trace(5)
            .run(EngineLimits::default());
        assert_eq!(exec.trace.len(), 5);
        assert_eq!(exec.total_steps, 51, "execution continues past the cap");
    }

    #[test]
    fn trace_marks_crashes() {
        let mem = VecRegisters::new(2);
        let procs = vec![WriterProcess::new(1, 0, 5), WriterProcess::new(2, 1, 1)];
        let mut first = true;
        let sched = move |view: &SchedView<'_, WriterProcess>| {
            if first {
                first = false;
                Decision::Crash(0)
            } else {
                Decision::Step(view.running().next().expect("pid 2 runs"))
            }
        };
        let exec = Engine::new(mem, procs, sched)
            .with_trace(100)
            .run(EngineLimits::default());
        let crash_entry = exec
            .trace
            .iter()
            .find(|e| e.event.is_none())
            .expect("crash traced");
        assert_eq!(crash_entry.pid, Some(1));
    }

    #[test]
    fn work_combines_mem_and_local() {
        let mem = VecRegisters::new(1);
        let procs = vec![WriterProcess::new(1, 0, 3)];
        let exec = Engine::new(mem, procs, RoundRobin::new()).run(EngineLimits::default());
        assert_eq!(exec.mem_work.writes, 3);
        assert_eq!(exec.work(), exec.mem_work.total() + exec.local_work);
    }
}
