use crate::registers::Registers;

/// An inclusive, non-empty range of job identifiers `lo..=hi`.
///
/// Plain jobs are spans with `lo == hi`; the iterated algorithms perform
/// *super-jobs* — groups of consecutive jobs — in one `do` action, reported
/// as a wider span.
///
/// # Examples
///
/// ```
/// use amo_sim::JobSpan;
///
/// let single = JobSpan::single(7);
/// assert_eq!(single.count(), 1);
/// let block = JobSpan::new(9, 16);
/// assert_eq!(block.count(), 8);
/// assert!(block.contains(12));
/// assert_eq!(block.jobs().collect::<Vec<_>>(), (9..=16).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobSpan {
    /// First job of the span (1-based job identifier).
    pub lo: u64,
    /// Last job of the span, inclusive.
    pub hi: u64,
}

impl JobSpan {
    /// Creates the span `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0` or `lo > hi` (job identifiers are 1-based and
    /// spans are non-empty).
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo >= 1 && lo <= hi, "invalid job span {lo}..={hi}");
        Self { lo, hi }
    }

    /// The single-job span `job..=job`.
    pub fn single(job: u64) -> Self {
        Self::new(job, job)
    }

    /// Number of jobs in the span.
    pub fn count(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Returns `true` if `job` lies within the span.
    pub fn contains(&self, job: u64) -> bool {
        (self.lo..=self.hi).contains(&job)
    }

    /// Iterates over the individual jobs of the span.
    pub fn jobs(&self) -> impl Iterator<Item = u64> {
        self.lo..=self.hi
    }
}

impl From<u64> for JobSpan {
    fn from(job: u64) -> Self {
        JobSpan::single(job)
    }
}

impl std::fmt::Display for JobSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}..={}", self.lo, self.hi)
        }
    }
}

/// What a single automaton action did.
///
/// Every [`Process::step`] call executes exactly one action of the automaton
/// and reports it through this event, which the engine uses for tracing,
/// work accounting and the `do` ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// A purely local action (no shared access).
    Local,
    /// The action read one shared cell.
    Read {
        /// Index of the cell read.
        cell: usize,
    },
    /// The action read one shared cell whose value was provably unchanged
    /// since the process last read it (the cell's epoch — see
    /// [`Registers::epoch`] — did not move), so an epoch-caching process
    /// served it from its local copy.
    ///
    /// The access is still a *model* read: it is counted in [`MemWork`]
    /// exactly like [`StepEvent::Read`], and the cell index attributes it in
    /// traces. On the engine's single-step (and therefore tracing) path the
    /// process performs a full re-read anyway — the variant only marks the
    /// access as cache-satisfiable; the batched fast path is where the load
    /// is actually skipped.
    ///
    /// [`Registers::epoch`]: crate::Registers::epoch
    /// [`MemWork`]: crate::MemWork
    CachedRead {
        /// Index of the cell read (from cache).
        cell: usize,
    },
    /// The action wrote one shared cell.
    Write {
        /// Index of the cell written.
        cell: usize,
    },
    /// The action performed one read-modify-write on a shared cell
    /// (baselines only; the paper's algorithms never emit this).
    Rmw {
        /// Index of the cell.
        cell: usize,
    },
    /// The action was a `do`: the process performed these jobs.
    ///
    /// For the at-most-once algorithms a correct execution never performs
    /// any job in two `Perform` events (Definition 2.2).
    Perform {
        /// The jobs performed by this action.
        span: JobSpan,
    },
    /// The process reached its final state; it must not be stepped again.
    Terminated,
}

/// Result of a batched [`Process::step_many`] call.
///
/// The engine's macro-stepping fast path grants a process a contiguous
/// quantum of actions; this records what the batch did in exactly the terms
/// the engine would have observed had it single-stepped: how many actions
/// ran, which `do` actions happened at which offsets, and whether the last
/// action terminated the process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Actions executed by the batch (`1..=budget`).
    pub steps: u64,
    /// Each `do` action of the batch as `(offset, span)`, where `offset` is
    /// the 0-based position of the action within this batch.
    pub performed: Vec<(u64, JobSpan)>,
    /// `true` when the final action of the batch was
    /// [`StepEvent::Terminated`].
    pub terminated: bool,
}

/// A crash-stop I/O automaton executed one action per [`step`](Self::step).
///
/// Contract:
///
/// * each `step` performs **at most one** shared-memory access on `mem`
///   (the model's atomicity granularity, DESIGN.md D1);
/// * after returning [`StepEvent::Terminated`] the process must not be
///   stepped again (the engine guarantees it will not be);
/// * `step` must never block: wait-freedom means every action is enabled in
///   bounded local computation regardless of other processes.
///
/// The type parameter `R` is the register-file flavour; algorithm automatons
/// are written once and instantiated for both [`VecRegisters`] (simulation)
/// and [`AtomicRegisters`] (threads).
///
/// [`VecRegisters`]: crate::VecRegisters
/// [`AtomicRegisters`]: crate::AtomicRegisters
pub trait Process<R: Registers + ?Sized> {
    /// Executes one action of the automaton.
    fn step(&mut self, mem: &R) -> StepEvent;

    /// The process identifier, `1..=m` (the paper's `p ∈ P`).
    fn pid(&self) -> usize;

    /// Returns `true` once the process has terminated.
    fn is_terminated(&self) -> bool;

    /// Local basic operations (comparisons, set-structure iterations, …)
    /// executed so far — the non-shared-memory part of Definition 2.5.
    fn local_work(&self) -> u64 {
        0
    }

    /// Executes up to `budget` consecutive actions as one batched call (the
    /// macro-stepping fast path).
    ///
    /// Contract — batching must be **observationally invisible**:
    ///
    /// * the batch must behave exactly like `out.steps` successive
    ///   [`step`](Self::step) calls — same shared-memory accesses in the
    ///   same order, same `do` actions, same final state;
    /// * `1 ≤ out.steps ≤ budget`; a batch may stop early (the engine
    ///   re-invokes until the quantum is exhausted), and must stop
    ///   immediately after a [`StepEvent::Terminated`] action;
    /// * implementations may assume no other process acts during the batch
    ///   (the engine guarantees it).
    ///
    /// The default implementation executes a single `step`, which trivially
    /// satisfies the contract; override it (as `KkProcess` does) to run hot
    /// loops — e.g. `gatherTry`/`gatherDone` read sweeps — without
    /// per-action engine dispatch.
    ///
    /// # Panics
    ///
    /// May panic (like `step`) if invoked after termination or with a zero
    /// budget.
    fn step_many(&mut self, mem: &R, budget: u64) -> BatchOutcome {
        debug_assert!(budget >= 1, "step_many needs a positive budget");
        let mut out = BatchOutcome {
            steps: 1,
            performed: Vec::new(),
            terminated: false,
        };
        match self.step(mem) {
            StepEvent::Perform { span } => out.performed.push((0, span)),
            StepEvent::Terminated => out.terminated = true,
            _ => {}
        }
        out
    }

    /// Executes up to `budget` consecutive actions as one **phased turn** —
    /// the sharded driver's unit of execution between communication epochs
    /// (see [`crate::shard`]).
    ///
    /// Contract — a turn must be *barrier-safe*: during a turn every shared
    /// read is served from a snapshot frozen at the last epoch barrier, and
    /// every shared write is buffered until the next barrier. For the
    /// resulting execution to remain sequentially consistent, a turn must
    /// keep all its foreign-cell reads **before** all its writes (reads →
    /// locals/performs → writes); in particular a process must never write
    /// an announcement and then gather others' announcements inside the same
    /// turn — the gather belongs to the next epoch, after the barrier has
    /// published the announcement. A turn may stop early (`out.steps <
    /// budget`) at such a communication boundary; the driver grants a fresh
    /// turn next epoch.
    ///
    /// The default executes a **single action**, which is trivially
    /// barrier-safe (one action performs at most one shared access).
    /// Processes with a known communication structure override this to run
    /// whole announce→gather→check→do cycles per epoch (as `KkProcess`
    /// does, stopping at each `gatherTry` start).
    ///
    /// # Panics
    ///
    /// May panic (like `step`) if invoked after termination or with a zero
    /// budget.
    fn step_turn(&mut self, mem: &R, budget: u64) -> BatchOutcome {
        debug_assert!(budget >= 1, "step_turn needs a positive budget");
        let mut out = BatchOutcome {
            steps: 1,
            performed: Vec::new(),
            terminated: false,
        };
        match self.step(mem) {
            StepEvent::Perform { span } => out.performed.push((0, span)),
            StepEvent::Terminated => out.terminated = true,
            _ => {}
        }
        out
    }

    /// `true` when the process currently stands at a communication
    /// boundary — the point where [`step_turn`](Self::step_turn) would end
    /// a turn (before re-reading foreign cells whose fresh values only
    /// become visible at the next epoch barrier).
    ///
    /// The sharded driver's single-step reference mode replays turns
    /// action-by-action and uses this query to stop at exactly the
    /// boundaries the batched `step_turn` stops at; the two modes are
    /// pinned bit-identical. The default is `true` (the default turn is a
    /// single action, so every action ends at a boundary). An override must
    /// agree with the override of `step_turn`: `step_turn` stops early
    /// exactly when this returns `true` mid-budget.
    fn at_comm_boundary(&self) -> bool {
        true
    }

    /// `true` if this process supports the crash–restart lifecycle
    /// ([`on_restart`](Self::on_restart)). Default: `false` — a restart
    /// entry in a [`CrashPlan`](crate::CrashPlan) for a process that does
    /// not opt in is a harness bug.
    fn supports_restart(&self) -> bool {
        false
    }

    /// Re-enters a crashed process: rebuild volatile (local) state from
    /// scratch, recovering anything needed from shared memory `mem`, and
    /// become runnable again.
    ///
    /// Contract: the restart itself is **not** an action — it must perform
    /// no shared-memory accesses counted as model work (reads issued here
    /// are recovery-protocol reads outside the step ledger) and must leave
    /// the process ready for its next [`step`](Self::step). Cumulative
    /// counters (`local_work`, writes performed in the previous life)
    /// persist across the restart: the process is the same automaton
    /// resuming after a crash, not a new one.
    ///
    /// Default: panics — override together with
    /// [`supports_restart`](Self::supports_restart).
    fn on_restart(&mut self, mem: &R) {
        let _ = mem;
        panic!(
            "process {} does not support restart (override on_restart/supports_restart)",
            self.pid()
        );
    }
}

/// A boxed process is a process: every method forwards to the boxee.
///
/// This is the trait-object seam of the dyn-friendly process API.
/// [`Process`] is object-safe (no generic methods, no `Self: Sized`
/// bounds), so `Box<dyn Process<R>>` is a valid type — and with this impl
/// it *itself* satisfies `Process<R>`, which means every generic driver
/// (the [`Engine`], [`run_scenario_on`], the thread runtime) accepts
/// heterogeneous boxed fleets unchanged. Forwarding covers the provided
/// methods too: a boxed `KkProcess` keeps its batched
/// [`step_many`](Process::step_many) fast path and its restart support
/// rather than falling back to the defaults, which is what lets the
/// equivalence suites pin boxed runs bit-identical to unboxed ones.
///
/// [`Engine`]: crate::Engine
/// [`run_scenario_on`]: crate::run_scenario_on
impl<R: Registers + ?Sized, P: Process<R> + ?Sized> Process<R> for Box<P> {
    fn step(&mut self, mem: &R) -> StepEvent {
        (**self).step(mem)
    }

    fn pid(&self) -> usize {
        (**self).pid()
    }

    fn is_terminated(&self) -> bool {
        (**self).is_terminated()
    }

    fn local_work(&self) -> u64 {
        (**self).local_work()
    }

    fn step_many(&mut self, mem: &R, budget: u64) -> BatchOutcome {
        (**self).step_many(mem, budget)
    }

    fn step_turn(&mut self, mem: &R, budget: u64) -> BatchOutcome {
        (**self).step_turn(mem, budget)
    }

    fn at_comm_boundary(&self) -> bool {
        (**self).at_comm_boundary()
    }

    fn supports_restart(&self) -> bool {
        (**self).supports_restart()
    }

    fn on_restart(&mut self, mem: &R) {
        (**self).on_restart(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_single() {
        let s = JobSpan::single(5);
        assert_eq!(s, JobSpan::new(5, 5));
        assert_eq!(s.count(), 1);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.to_string(), "5");
    }

    #[test]
    fn span_range() {
        let s = JobSpan::new(3, 10);
        assert_eq!(s.count(), 8);
        assert_eq!(s.jobs().count(), 8);
        assert_eq!(s.to_string(), "3..=10");
        assert_eq!(JobSpan::from(9u64), JobSpan::single(9));
    }

    #[test]
    #[should_panic(expected = "invalid job span")]
    fn zero_lo_panics() {
        JobSpan::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "invalid job span")]
    fn inverted_span_panics() {
        JobSpan::new(5, 4);
    }

    #[test]
    fn span_ordering_is_by_lo_then_hi() {
        let mut spans = vec![JobSpan::new(5, 9), JobSpan::new(1, 2), JobSpan::new(5, 6)];
        spans.sort();
        assert_eq!(
            spans,
            vec![JobSpan::new(1, 2), JobSpan::new(5, 6), JobSpan::new(5, 9)]
        );
    }
}
