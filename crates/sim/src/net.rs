//! Simulated message-passing registers: a majority-quorum replicated
//! implementation of the [`Registers`] trait over a deterministic network
//! model — the [`BackendSpec::Quorum`](crate::BackendSpec::Quorum) backend.
//!
//! # Why a network backend
//!
//! The paper assumes atomic read/write registers; real deployments build
//! them from message passing. [`QuorumRegisters`] is that construction: a
//! set of `k` replica servers each holding a `(tag, value)` pair per cell,
//! a client port that executes every register operation as a quorum
//! protocol over a seeded [`NetworkModel`] (configurable latency
//! distributions, message drop, reordering, replica-server crashes), and an
//! Omega-style failure detector with an explicit packet budget driving
//! replica crash suspicion.
//!
//! # The protocol
//!
//! Tags are `(seq << 8) | writer_pid` so ties are impossible; replicas
//! apply a `Put` only when its tag exceeds the stored one, which makes
//! every replica-side update idempotent under duplication and stale under
//! reordering — late retransmissions can never roll a cell back.
//!
//! * **Write** (two rounds): query a majority for the cell's highest tag,
//!   mint the successor tag, propagate `(tag, value)` until a majority
//!   acks. A later reader's query majority intersects the propagation
//!   majority, so the new tag is visible to every subsequent operation.
//! * **Read** (one and a half rounds, à la *Oh-RAM!*): query a majority for
//!   `(tag, value)`; if every reply already carries the maximum tag, the
//!   value is confirmed at a majority and the read completes in **one**
//!   round. Only when the maximum tag is *unconfirmed* (some replica
//!   answered with a smaller tag, so a concurrent or failed write may not
//!   have reached a majority) does the reader spend the extra half round
//!   writing `(tag, value)` back to a majority before returning — which is
//!   what makes the read atomic: a returned value is always durable at a
//!   quorum, so no later read can observe an older one.
//!
//! # Failure detection under a packet budget
//!
//! The client suspects replicas Omega-style, but explicit probe traffic is
//! capped by [`NetworkSpec::fd_packet_budget`]: periodic `Probe` packets go
//! only to the current *leader* (the lowest-indexed unsuspected replica)
//! and stop once the budget is spent. Everything else is piggybacked —
//! every protocol reply refreshes the sender's liveness for free, and
//! suspicion is raised only after repeated retransmissions to a replica
//! that has stayed silent past the suspicion horizon. Hearing from a
//! suspected replica reinstates it (eventual accuracy). Suspicion is a pure
//! optimisation: suspected replicas are skipped when broadcasting, but the
//! quorum threshold always counts over all `k` replicas, and when too few
//! unsuspected replicas remain the client falls back to broadcasting at
//! every silent replica — so false suspicion costs messages, never safety.
//!
//! Replica crashes are capped at a minority (`(k-1)/2`), so a responsive
//! majority always exists and every operation terminates.
//!
//! # Determinism and the equivalence obligation
//!
//! All randomness (latency samples, drop and reorder rolls, crash times)
//! flows from one splitmix64 stream seeded by [`NetworkSpec::seed`];
//! message delivery is ordered by a virtual-time heap. Identical specs
//! replay identical executions, so the message counters join the
//! deterministic counter set the perf gate pins exactly. The wrapped
//! [`VecRegisters`] remains the authoritative shared memory for values and
//! work accounting — the protocol runs alongside it and its result is
//! checked against the wrapped file on every operation
//! ([`NetStats::atomicity_violations`] counts disagreements, pinned at zero
//! by the test suites) — so a `Quorum` run is bit-identical to a `Vec` run
//! in every network regime, and a lossless zero-latency network is the
//! degenerate case the equivalence suites pin counter-for-counter.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::registers::{MemWork, Registers, VecRegisters};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-message latency distribution of a [`NetworkModel`] (virtual-time
/// units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LatencyDist {
    /// Every message is delivered at its send time (the degenerate case
    /// that must be bit-identical to shared memory).
    #[default]
    Zero,
    /// Every message takes exactly this many time units.
    Fixed(
        /// Delay per message.
        u64,
    ),
    /// Per-message seeded-uniform delay in `lo..=hi`.
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay (inclusive); must be `>= lo`.
        hi: u64,
    },
}

impl LatencyDist {
    /// The largest base delay this distribution can produce.
    pub fn max_delay(&self) -> u64 {
        match self {
            LatencyDist::Zero => 0,
            LatencyDist::Fixed(d) => *d,
            LatencyDist::Uniform { hi, .. } => *hi,
        }
    }

    /// Stable label for report rows.
    pub fn label(&self) -> &'static str {
        match self {
            LatencyDist::Zero => "zero",
            LatencyDist::Fixed(_) => "fixed",
            LatencyDist::Uniform { .. } => "uniform",
        }
    }

    #[inline]
    fn sample(&self, rng: &mut u64) -> u64 {
        match self {
            LatencyDist::Zero => 0,
            LatencyDist::Fixed(d) => *d,
            LatencyDist::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform latency needs lo <= hi");
                lo + splitmix64(rng) % (hi - lo + 1)
            }
        }
    }
}

/// Declarative description of one simulated network environment — the
/// payload of [`BackendSpec::Quorum`](crate::BackendSpec::Quorum).
///
/// The default is a 3-replica, zero-latency, lossless, crash-free network,
/// which is bit-identical to the `Vec` backend by the equivalence
/// obligation. All randomness derives from [`seed`](Self::seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetworkSpec {
    /// Replica-server count `k`; the quorum threshold is `k/2 + 1`.
    /// Clamped to at least 1.
    pub replicas: u8,
    /// Seed of the splitmix64 stream behind every latency sample, drop and
    /// reorder roll, and crash time.
    pub seed: u64,
    /// Per-message base latency distribution.
    pub latency: LatencyDist,
    /// Per-message drop probability in per-mille (‰). The quorum client
    /// clamps this to 900‰ so retransmission always terminates.
    pub drop_per_mille: u16,
    /// Per-message probability (‰) of taking a reordering detour: a
    /// reordered message gets extra seeded delay and a randomized delivery
    /// rank, so it can overtake or be overtaken by its neighbours.
    pub reorder_per_mille: u16,
    /// Replica servers that crash at seeded virtual times. Clamped to a
    /// minority (`(k-1)/2`) so a responsive majority always exists.
    pub replica_crashes: u8,
    /// Failure-detector packet budget: explicit leader `Probe` packets stop
    /// once this many were sent; liveness information then flows only by
    /// piggybacking on protocol replies.
    pub fd_packet_budget: u32,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        Self {
            replicas: 3,
            seed: 0,
            latency: LatencyDist::Zero,
            drop_per_mille: 0,
            reorder_per_mille: 0,
            replica_crashes: 0,
            fd_packet_budget: 256,
        }
    }
}

impl NetworkSpec {
    /// A lossless zero-latency spec over `replicas` servers.
    pub fn lossless(replicas: u8) -> Self {
        Self {
            replicas,
            ..Self::default()
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the latency distribution.
    pub fn with_latency(mut self, latency: LatencyDist) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the drop rate (‰).
    pub fn with_drop(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Sets the reorder rate (‰).
    pub fn with_reorder(mut self, per_mille: u16) -> Self {
        self.reorder_per_mille = per_mille;
        self
    }

    /// Sets how many replica servers crash.
    pub fn with_replica_crashes(mut self, crashes: u8) -> Self {
        self.replica_crashes = crashes;
        self
    }

    /// Sets the failure-detector packet budget.
    pub fn with_fd_budget(mut self, budget: u32) -> Self {
        self.fd_packet_budget = budget;
        self
    }

    /// `true` when this network can disturb message delivery (anything
    /// beyond the lossless zero-latency degenerate case).
    pub fn is_lossy(&self) -> bool {
        self.latency != LatencyDist::Zero
            || self.drop_per_mille > 0
            || self.reorder_per_mille > 0
            || self.replica_crashes > 0
    }
}

/// One delivered message, as returned by [`NetworkModel::deliver_next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery<T> {
    /// Virtual delivery time.
    pub at: u64,
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// The payload.
    pub msg: T,
}

#[derive(Debug)]
struct Flight<T> {
    at: u64,
    /// Delivery rank among messages with equal `at`: the send sequence
    /// number normally (FIFO), a seeded random value for reordered
    /// messages.
    prio: u64,
    seq: u64,
    from: usize,
    to: usize,
    msg: T,
}

impl<T> Flight<T> {
    #[inline]
    fn key(&self) -> (u64, u64, u64) {
        (self.at, self.prio, self.seq)
    }
}

impl<T> PartialEq for Flight<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Flight<T> {}
impl<T> PartialOrd for Flight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Flight<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.key().cmp(&self.key())
    }
}

/// A deterministic seeded virtual-time network: messages are sent between
/// integer-identified nodes and delivered in `(time, rank)` order, with
/// per-message latency sampling, seeded drops, and seeded reordering
/// detours.
///
/// The model is generic over the payload so the determinism property suite
/// can drive it directly; [`QuorumRegisters`] instantiates it with the
/// quorum protocol's message type. Identical constructions fed identical
/// call sequences replay identical delivery orders — the invariant the
/// `prop_net` suite pins.
#[derive(Debug)]
pub struct NetworkModel<T> {
    heap: BinaryHeap<Flight<T>>,
    now: u64,
    seq: u64,
    rng: u64,
    latency: LatencyDist,
    drop_per_mille: u16,
    reorder_per_mille: u16,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

impl<T> NetworkModel<T> {
    /// Builds the model from a spec's link parameters (replica counts and
    /// failure-detector fields are the quorum client's concern, not the
    /// link's).
    pub fn new(spec: NetworkSpec) -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            rng: spec.seed,
            latency: spec.latency,
            drop_per_mille: spec.drop_per_mille,
            reorder_per_mille: spec.reorder_per_mille,
            sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Sends `msg` from `from` to `to`; returns `false` when the message
    /// was dropped by the link.
    pub fn send(&mut self, from: usize, to: usize, msg: T) -> bool {
        self.sent += 1;
        if self.drop_per_mille > 0 && splitmix64(&mut self.rng) % 1000 < self.drop_per_mille as u64
        {
            self.dropped += 1;
            return false;
        }
        let mut delay = self.latency.sample(&mut self.rng);
        let mut prio = self.seq;
        if self.reorder_per_mille > 0
            && splitmix64(&mut self.rng) % 1000 < self.reorder_per_mille as u64
        {
            // A reordering detour: extra delay plus a randomized delivery
            // rank, so the message genuinely overtakes or falls behind its
            // send-order neighbours.
            delay += 1 + splitmix64(&mut self.rng) % (2 * self.latency.max_delay() + 8);
            prio = splitmix64(&mut self.rng);
        }
        self.heap.push(Flight {
            at: self.now + delay,
            prio,
            seq: self.seq,
            from,
            to,
            msg,
        });
        self.seq += 1;
        true
    }

    /// Delivery time of the next in-flight message, if any.
    pub fn peek_next_at(&self) -> Option<u64> {
        self.heap.peek().map(|f| f.at)
    }

    /// Delivers the next message, advancing virtual time to its delivery
    /// time.
    pub fn deliver_next(&mut self) -> Option<Delivery<T>> {
        let f = self.heap.pop()?;
        self.now = self.now.max(f.at);
        self.delivered += 1;
        Some(Delivery {
            at: f.at,
            from: f.from,
            to: f.to,
            msg: f.msg,
        })
    }

    /// Advances virtual time to `t` (never backwards).
    pub fn advance_to(&mut self, t: u64) {
        self.now = self.now.max(t);
    }

    /// Advances virtual time by one unit (a local computation step).
    pub fn tick(&mut self) {
        self.now += 1;
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.heap.len()
    }

    /// Messages handed to [`send`](Self::send).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped by the link.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Deterministic counters of the quorum protocol and its network (pure
/// observability — never part of the model's work measure).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the link (including dropped ones).
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by the link.
    pub messages_dropped: u64,
    /// Protocol reads that completed in one round (max tag confirmed at a
    /// majority).
    pub reads_one_round: u64,
    /// Protocol reads that spent the extra half round writing the value
    /// back.
    pub read_writebacks: u64,
    /// Protocol writes (each is two rounds: tag query + propagation).
    pub writes: u64,
    /// Request retransmissions after an RTO expiry.
    pub retransmissions: u64,
    /// Explicit failure-detector `Probe` packets sent (bounded by
    /// [`NetworkSpec::fd_packet_budget`]).
    pub fd_packets: u64,
    /// Replica suspicions raised.
    pub suspicions: u64,
    /// Disagreements between the protocol's result and the authoritative
    /// shared memory. **Any nonzero value is a protocol bug**; the test
    /// suites pin this at zero in every network regime.
    pub atomicity_violations: u64,
}

/// Quorum protocol message.
#[derive(Debug, Clone, Copy)]
enum Payload {
    /// Client → replica: report your `(tag, value)` for `cell`.
    Get { op: u64, cell: usize },
    /// Replica → client: the requested `(tag, value)`.
    GetReply { op: u64, tag: u64, value: u64 },
    /// Client → replica: store `(tag, value)` for `cell` if `tag` is newer.
    Put {
        op: u64,
        cell: usize,
        tag: u64,
        value: u64,
    },
    /// Replica → client: the `Put` was applied (or superseded — both ack).
    PutAck { op: u64 },
    /// Client → leader: failure-detector liveness probe.
    Probe,
    /// Leader → client: probe answer.
    ProbeAck,
}

#[derive(Debug)]
struct Replica {
    /// Seeded crash time; the replica ignores every message delivered at or
    /// after it.
    crash_at: Option<u64>,
    tags: Vec<u64>,
    vals: Vec<u64>,
}

/// Consecutive unanswered retransmissions to a replica before silence past
/// the suspicion horizon raises a suspicion.
const RETX_SUSPECT: u32 = 3;

/// Hard cap on RTO rounds within one quorum phase; exceeding it means the
/// configuration starved the quorum (a harness bug, since replica crashes
/// are clamped to a minority and drops to 900‰).
const SPIN_CAP: u32 = 100_000;

/// Client-side state of the quorum protocol: the replicas, the link, and
/// the failure detector.
#[derive(Debug)]
struct QuorumCore {
    net: NetworkModel<Payload>,
    replicas: Vec<Replica>,
    majority: usize,
    op_seq: u64,
    stats: NetStats,
    /// Per-replica (1-based, slot 0 unused) virtual time of the last
    /// message heard from it.
    last_heard: Vec<u64>,
    suspected: Vec<bool>,
    /// Per-replica count of sends without an answer since last heard.
    retx: Vec<u32>,
    fd_budget_left: u32,
    next_probe_at: u64,
    rto: u64,
    probe_interval: u64,
    suspect_after: u64,
}

impl QuorumCore {
    fn new(spec: NetworkSpec, initial: &[u64]) -> Self {
        let k = (spec.replicas.max(1)) as usize;
        // Liveness clamps: a drop rate of 1000‰ would starve every quorum,
        // and a crashed majority would starve them legitimately — both are
        // configuration errors this backend refuses to model.
        let link = NetworkSpec {
            drop_per_mille: spec.drop_per_mille.min(900),
            ..spec
        };
        let mut rng = spec.seed ^ 0xA02F_7C65_9D16_3D4B;
        let crashes = (spec.replica_crashes as usize).min(k.saturating_sub(1) / 2);
        let mut crash_at = vec![None; k];
        let mut placed = 0usize;
        while placed < crashes {
            let r = (splitmix64(&mut rng) as usize) % k;
            if crash_at[r].is_none() {
                crash_at[r] = Some(64 + splitmix64(&mut rng) % 1024);
                placed += 1;
            }
        }
        let replicas = crash_at
            .into_iter()
            .map(|c| Replica {
                crash_at: c,
                tags: vec![0; initial.len()],
                vals: initial.to_vec(),
            })
            .collect();
        let rto = 4 * spec.latency.max_delay() + 16;
        Self {
            net: NetworkModel::new(link),
            replicas,
            majority: k / 2 + 1,
            op_seq: 0,
            stats: NetStats::default(),
            last_heard: vec![0; k + 1],
            suspected: vec![false; k + 1],
            retx: vec![0; k + 1],
            fd_budget_left: spec.fd_packet_budget,
            next_probe_at: 2 * rto,
            rto,
            probe_interval: 2 * rto,
            suspect_after: 8 * rto,
        }
    }

    fn k(&self) -> usize {
        self.replicas.len()
    }

    /// Every register operation starts here: virtual time advances by one
    /// local step (so zero-latency runs still have a clock) and the failure
    /// detector gets its turn.
    fn begin_op(&mut self) {
        self.net.tick();
        self.update_suspicions();
        self.maybe_probe();
    }

    /// The suspicion sweep: a replica with [`RETX_SUSPECT`] unanswered sends
    /// *and* silence past the suspicion horizon becomes suspected. Run at
    /// every operation start and at every RTO expiry, so crashed replicas
    /// are detected even when quorums keep completing without them.
    fn update_suspicions(&mut self) {
        let now = self.net.now();
        for r in 1..=self.k() {
            if !self.suspected[r]
                && self.retx[r] >= RETX_SUSPECT
                && now.saturating_sub(self.last_heard[r]) > self.suspect_after
            {
                self.suspected[r] = true;
                self.stats.suspicions += 1;
            }
        }
    }

    /// Budgeted leader probing: at most one `Probe` per interval, to the
    /// lowest-indexed unsuspected replica, until the budget is spent.
    fn maybe_probe(&mut self) {
        if self.fd_budget_left == 0 || self.net.now() < self.next_probe_at {
            return;
        }
        self.next_probe_at = self.net.now() + self.probe_interval;
        if let Some(leader) = self.leader() {
            self.net.send(0, leader, Payload::Probe);
            self.retx[leader] += 1;
            self.fd_budget_left -= 1;
            self.stats.fd_packets += 1;
        }
    }

    /// The current Omega output: the lowest-indexed unsuspected replica
    /// (1-based).
    fn leader(&self) -> Option<usize> {
        (1..=self.k()).find(|&r| !self.suspected[r])
    }

    /// Runs one quorum phase: broadcast `msg`, collect `need` matching
    /// replies (from distinct replicas), retransmitting on RTO expiry and
    /// updating suspicion along the way. Returns the reply payloads.
    fn run_phase(&mut self, msg: Payload, need: usize) -> Vec<Payload> {
        let op = match msg {
            Payload::Get { op, .. } | Payload::Put { op, .. } => op,
            _ => unreachable!("phases are Get or Put broadcasts"),
        };
        let k = self.k();
        let mut replied = vec![false; k + 1];
        let mut replies = Vec::with_capacity(need);
        let unsuspected: Vec<usize> = (1..=k).filter(|&r| !self.suspected[r]).collect();
        let targets = if unsuspected.len() >= need {
            unsuspected
        } else {
            (1..=k).collect()
        };
        for &r in &targets {
            self.net.send(0, r, msg);
            self.retx[r] += 1;
        }
        let mut rounds = 0u32;
        loop {
            let deadline = self.net.now() + self.rto;
            while self.net.peek_next_at().is_some_and(|at| at <= deadline) {
                let d = self.net.deliver_next().expect("peeked");
                self.on_delivery(d, op, &mut replied, &mut replies);
                if replies.len() >= need {
                    return replies;
                }
            }
            // RTO expiry: advance the clock, update suspicion, retransmit.
            self.net.advance_to(deadline);
            rounds += 1;
            assert!(
                rounds <= SPIN_CAP,
                "quorum starved after {SPIN_CAP} RTO rounds — network spec \
                 violates the liveness clamps"
            );
            self.update_suspicions();
            let mut retry: Vec<usize> = (1..=k)
                .filter(|&r| !replied[r] && !self.suspected[r])
                .collect();
            if replies.len() + retry.len() < need {
                // Too few unsuspected replicas left for a quorum: fall back
                // to every silent replica. False suspicion costs messages,
                // never liveness.
                retry = (1..=k).filter(|&r| !replied[r]).collect();
            }
            for &r in &retry {
                self.net.send(0, r, msg);
                self.retx[r] += 1;
                self.stats.retransmissions += 1;
            }
        }
    }

    /// Handles one delivered message: replies land at the client (node 0),
    /// requests at a replica.
    fn on_delivery(
        &mut self,
        d: Delivery<Payload>,
        op: u64,
        replied: &mut [bool],
        replies: &mut Vec<Payload>,
    ) {
        if d.to == 0 {
            // Client side: every reply — current, stale, or probe —
            // piggybacks liveness for its sender.
            self.last_heard[d.from] = d.at;
            self.retx[d.from] = 0;
            self.suspected[d.from] = false;
            let reply_op = match d.msg {
                Payload::GetReply { op, .. } | Payload::PutAck { op } => Some(op),
                _ => None,
            };
            if reply_op == Some(op) && !replied[d.from] {
                replied[d.from] = true;
                replies.push(d.msg);
            }
            return;
        }
        // Replica side. A crashed replica is silent forever.
        let r = d.to;
        let rep = &mut self.replicas[r - 1];
        if rep.crash_at.is_some_and(|t| d.at >= t) {
            return;
        }
        match d.msg {
            Payload::Get { op, cell } => {
                let reply = Payload::GetReply {
                    op,
                    tag: rep.tags[cell],
                    value: rep.vals[cell],
                };
                self.net.send(r, 0, reply);
            }
            Payload::Put {
                op,
                cell,
                tag,
                value,
            } => {
                // Idempotent, monotone apply: duplicates and stale
                // retransmissions can never roll a cell back.
                if tag > rep.tags[cell] {
                    rep.tags[cell] = tag;
                    rep.vals[cell] = value;
                }
                self.net.send(r, 0, Payload::PutAck { op });
            }
            Payload::Probe => {
                self.net.send(r, 0, Payload::ProbeAck);
            }
            Payload::GetReply { .. } | Payload::PutAck { .. } | Payload::ProbeAck => {
                unreachable!("replies are addressed to the client")
            }
        }
    }

    /// Highest `(tag, value)` among a phase's `GetReply`s, plus how many
    /// replies carried that tag.
    fn max_tag(replies: &[Payload]) -> (u64, u64, usize) {
        let (mut t, mut v) = (0u64, 0u64);
        for p in replies {
            if let Payload::GetReply { tag, value, .. } = p {
                // `>=` so tag 0 (the replicated initial snapshot, on which
                // all replicas agree) still surfaces its value.
                if *tag >= t {
                    t = *tag;
                    v = *value;
                }
            }
        }
        let confirmed = replies
            .iter()
            .filter(|p| matches!(p, Payload::GetReply { tag, .. } if *tag == t))
            .count();
        (t, v, confirmed)
    }

    /// One-and-a-half-round atomic read of `cell`.
    fn protocol_read(&mut self, cell: usize) -> u64 {
        self.begin_op();
        self.op_seq += 1;
        let replies = self.run_phase(
            Payload::Get {
                op: self.op_seq,
                cell,
            },
            self.majority,
        );
        let (tag, value, confirmed) = Self::max_tag(&replies);
        if confirmed >= self.majority {
            // Every reply already carries the maximum tag: the value is
            // durable at a quorum, no write-back needed.
            self.stats.reads_one_round += 1;
        } else {
            // Unconfirmed maximum: spend the half round making the value
            // durable at a majority before returning it.
            self.stats.read_writebacks += 1;
            self.op_seq += 1;
            self.run_phase(
                Payload::Put {
                    op: self.op_seq,
                    cell,
                    tag,
                    value,
                },
                self.majority,
            );
        }
        value
    }

    /// Two-round write of `value` into `cell` on behalf of `pid`.
    fn protocol_write(&mut self, cell: usize, value: u64, pid: usize) {
        self.begin_op();
        self.op_seq += 1;
        let replies = self.run_phase(
            Payload::Get {
                op: self.op_seq,
                cell,
            },
            self.majority,
        );
        let (max_tag, _, _) = Self::max_tag(&replies);
        let tag = (((max_tag >> 8) + 1) << 8) | (pid as u64 & 0xFF);
        self.op_seq += 1;
        self.run_phase(
            Payload::Put {
                op: self.op_seq,
                cell,
                tag,
                value,
            },
            self.majority,
        );
        self.stats.writes += 1;
    }

    /// Protocol counters merged with the link counters.
    fn stats(&self) -> NetStats {
        NetStats {
            messages_sent: self.net.sent(),
            messages_delivered: self.net.delivered(),
            messages_dropped: self.net.dropped(),
            ..self.stats
        }
    }
}

/// Majority-quorum replicated registers over a simulated network — the
/// [`BackendSpec::Quorum`](crate::BackendSpec::Quorum) register backend.
///
/// Every register operation executes the quorum protocol (see the module
/// docs) over `k` replica servers through a seeded [`NetworkModel`]. The
/// wrapped [`VecRegisters`] remains the authoritative shared memory —
/// values, work counters and epochs delegate to it verbatim, so a `Quorum`
/// run is bit-identical to a `Vec` run — while the protocol result is
/// cross-checked against it on every operation
/// ([`NetStats::atomicity_violations`]).
///
/// The port is single-client by construction: the simulation engine
/// serializes all shared accesses, so operations run one at a time on
/// behalf of the acting process (announced via [`Registers::note_actor`],
/// which stamps the writer's pid into the protocol tags). Process crashes
/// lose nothing — state lives on the replicas — so
/// [`Registers::crash_blackout`] is a no-op.
///
/// # Examples
///
/// ```
/// use amo_sim::{NetworkSpec, QuorumRegisters, Registers, VecRegisters};
///
/// let spec = NetworkSpec::lossless(3).with_drop(200).with_reorder(100);
/// let mem = QuorumRegisters::new(VecRegisters::new(2), spec);
/// mem.note_actor(1);
/// mem.write(0, 7);
/// assert_eq!(mem.read(0), 7);
/// let stats = mem.net_stats();
/// assert_eq!(stats.atomicity_violations, 0);
/// assert!(stats.messages_sent > 0);
/// ```
#[derive(Debug)]
pub struct QuorumRegisters {
    inner: VecRegisters,
    core: RefCell<QuorumCore>,
    spec: NetworkSpec,
    actor: Cell<usize>,
}

impl QuorumRegisters {
    /// Wraps `inner`, replicating its current contents onto `spec.replicas`
    /// fresh replica servers.
    pub fn new(inner: VecRegisters, spec: NetworkSpec) -> Self {
        let core = QuorumCore::new(spec, &inner.snapshot());
        Self {
            inner,
            core: RefCell::new(core),
            spec,
            actor: Cell::new(0),
        }
    }

    /// Unwraps the authoritative register file.
    pub fn into_inner(self) -> VecRegisters {
        self.inner
    }

    /// The network spec this backend was built with.
    pub fn spec(&self) -> NetworkSpec {
        self.spec
    }

    /// Protocol and link counters accumulated so far.
    pub fn net_stats(&self) -> NetStats {
        self.core.borrow().stats()
    }

    /// Replica-server count `k`.
    pub fn replica_count(&self) -> usize {
        self.core.borrow().k()
    }

    /// Replicas currently suspected by the failure detector (1-based ids).
    pub fn suspected(&self) -> Vec<usize> {
        let core = self.core.borrow();
        (1..=core.k()).filter(|&r| core.suspected[r]).collect()
    }

    /// The failure detector's current leader (lowest unsuspected replica),
    /// if any.
    pub fn leader(&self) -> Option<usize> {
        self.core.borrow().leader()
    }

    /// Unspent failure-detector packet budget.
    pub fn fd_budget_left(&self) -> u32 {
        self.core.borrow().fd_budget_left
    }

    /// Current virtual time of the network.
    pub fn virtual_time(&self) -> u64 {
        self.core.borrow().net.now()
    }

    /// Cross-checks a protocol result against the authoritative value.
    #[inline]
    fn check(&self, protocol: u64, oracle: u64) -> u64 {
        if protocol != oracle {
            self.core.borrow_mut().stats.atomicity_violations += 1;
        }
        oracle
    }
}

impl Registers for QuorumRegisters {
    #[inline]
    fn read(&self, cell: usize) -> u64 {
        let oracle = self.inner.read(cell);
        let protocol = self.core.borrow_mut().protocol_read(cell);
        self.check(protocol, oracle)
    }

    #[inline]
    fn peek(&self, cell: usize) -> u64 {
        let oracle = self.inner.peek(cell);
        let protocol = self.core.borrow_mut().protocol_read(cell);
        self.check(protocol, oracle)
    }

    #[inline]
    fn note_reads(&self, reads: u64) {
        self.inner.note_reads(reads);
    }

    fn epochs_enabled(&self) -> bool {
        self.inner.epochs_enabled()
    }

    #[inline]
    fn epoch(&self, cell: usize) -> u64 {
        self.inner.epoch(cell)
    }

    #[inline]
    fn global_epoch(&self) -> u64 {
        self.inner.global_epoch()
    }

    #[inline]
    fn write(&self, cell: usize, value: u64) {
        self.inner.write(cell, value);
        self.core
            .borrow_mut()
            .protocol_write(cell, value, self.actor.get());
    }

    #[inline]
    fn swap(&self, cell: usize, value: u64) -> u64 {
        let oracle = self.inner.swap(cell, value);
        let prev = {
            let mut core = self.core.borrow_mut();
            let prev = core.protocol_read(cell);
            core.protocol_write(cell, value, self.actor.get());
            prev
        };
        self.check(prev, oracle)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn work(&self) -> MemWork {
        self.inner.work()
    }

    #[inline]
    fn note_actor(&self, pid: usize) {
        self.actor.set(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quorum(cells: usize, spec: NetworkSpec) -> QuorumRegisters {
        QuorumRegisters::new(VecRegisters::new(cells), spec)
    }

    #[test]
    fn lossless_delegation_is_verbatim() {
        let plain = VecRegisters::new(4);
        let wrapped = quorum(4, NetworkSpec::default());
        for mem in [&plain as &dyn Registers, &wrapped as &dyn Registers] {
            mem.note_actor(1);
            mem.write(0, 7);
            mem.read(0);
            mem.swap(1, 9);
            mem.note_reads(3);
            mem.perform_barrier();
            mem.crash_blackout(1);
        }
        assert_eq!(plain.work(), wrapped.work());
        assert_eq!(plain.global_epoch(), wrapped.global_epoch());
        assert_eq!(plain.epoch(0), wrapped.epoch(0));
        assert_eq!(wrapped.net_stats().atomicity_violations, 0);
    }

    #[test]
    fn lossless_reads_are_all_one_round() {
        let mem = quorum(2, NetworkSpec::default());
        mem.note_actor(1);
        for i in 0..10 {
            mem.write(0, i);
            assert_eq!(mem.read(0), i);
        }
        let s = mem.net_stats();
        assert_eq!(s.reads_one_round, 10, "lossless: every read one round");
        assert_eq!(s.read_writebacks, 0);
        assert_eq!(s.writes, 10);
        assert_eq!(s.retransmissions, 0, "no RTO ever expires");
        assert_eq!(s.suspicions, 0);
        assert_eq!(s.atomicity_violations, 0);
        assert_eq!(s.messages_dropped, 0);
    }

    #[test]
    fn lossy_reordering_network_preserves_values() {
        let spec = NetworkSpec::lossless(5)
            .with_seed(11)
            .with_latency(LatencyDist::Uniform { lo: 1, hi: 12 })
            .with_drop(250)
            .with_reorder(200);
        let mem = quorum(3, spec);
        mem.note_actor(2);
        for i in 1..=40u64 {
            let cell = (i % 3) as usize;
            mem.write(cell, i);
            assert_eq!(mem.read(cell), i, "op {i}");
        }
        let s = mem.net_stats();
        assert_eq!(s.atomicity_violations, 0);
        assert!(s.messages_dropped > 0, "drops actually happened");
        assert!(s.retransmissions > 0, "drops forced retransmissions");
        assert_eq!(s.reads_one_round + s.read_writebacks, 40);
    }

    #[test]
    fn swap_returns_previous_value_under_loss() {
        let spec = NetworkSpec::lossless(3).with_seed(5).with_drop(300);
        let mem = quorum(1, spec);
        mem.note_actor(1);
        mem.write(0, 10);
        assert_eq!(mem.swap(0, 20), 10);
        assert_eq!(mem.swap(0, 30), 20);
        assert_eq!(mem.read(0), 30);
        assert_eq!(mem.net_stats().atomicity_violations, 0);
    }

    #[test]
    fn replica_crashes_are_suspected_and_survived() {
        let spec = NetworkSpec::lossless(5)
            .with_seed(3)
            .with_replica_crashes(2)
            .with_latency(LatencyDist::Fixed(2));
        let mem = quorum(2, spec);
        mem.note_actor(1);
        for i in 0..220u64 {
            mem.write((i % 2) as usize, i);
            assert_eq!(mem.read((i % 2) as usize), i);
        }
        let s = mem.net_stats();
        assert_eq!(s.atomicity_violations, 0);
        assert!(
            mem.suspected().len() <= 2,
            "at most the crashed minority stays suspected"
        );
        assert!(s.suspicions >= 1, "silent crashed replicas get suspected");
        assert!(mem.leader().is_some(), "a live leader always exists");
    }

    #[test]
    fn crash_clamp_keeps_a_majority_alive() {
        // Asking for more crashes than a minority is clamped.
        let spec = NetworkSpec::lossless(3)
            .with_replica_crashes(3)
            .with_seed(9);
        let mem = quorum(1, spec);
        mem.note_actor(1);
        for i in 0..300u64 {
            mem.write(0, i);
        }
        assert_eq!(mem.read(0), 299);
        assert_eq!(mem.net_stats().atomicity_violations, 0);
    }

    #[test]
    fn fd_budget_bounds_probe_traffic() {
        let spec = NetworkSpec::lossless(3).with_fd_budget(4);
        let mem = quorum(1, spec);
        mem.note_actor(1);
        for i in 0..4000u64 {
            mem.write(0, i);
        }
        let s = mem.net_stats();
        assert_eq!(s.fd_packets, 4, "probe traffic stops at the budget");
        assert_eq!(mem.fd_budget_left(), 0);
        assert_eq!(s.atomicity_violations, 0);
    }

    #[test]
    fn network_model_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let spec = NetworkSpec::lossless(3)
                .with_seed(seed)
                .with_latency(LatencyDist::Uniform { lo: 0, hi: 9 })
                .with_drop(200)
                .with_reorder(300);
            let mut net = NetworkModel::new(spec);
            for i in 0..200u64 {
                net.send(0, (i % 4) as usize, i);
            }
            let mut order = Vec::new();
            while let Some(d) = net.deliver_next() {
                order.push((d.at, d.to, d.msg));
            }
            (order, net.sent(), net.dropped())
        };
        assert_eq!(run(42), run(42), "identical seeds replay identically");
        assert_ne!(run(42).0, run(43).0, "different seeds diverge");
    }

    #[test]
    fn network_model_delivers_in_time_order() {
        let spec = NetworkSpec::lossless(2)
            .with_seed(7)
            .with_latency(LatencyDist::Uniform { lo: 0, hi: 30 });
        let mut net = NetworkModel::new(spec);
        for i in 0..100u64 {
            net.send(0, 1, i);
        }
        let mut last = 0;
        while let Some(d) = net.deliver_next() {
            assert!(d.at >= last, "virtual time never runs backwards");
            last = d.at;
            assert_eq!(net.now(), last);
        }
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn reordering_actually_reorders() {
        let spec = NetworkSpec::lossless(2)
            .with_seed(1)
            .with_reorder(500)
            .with_latency(LatencyDist::Fixed(3));
        let mut net = NetworkModel::new(spec);
        for i in 0..100u64 {
            net.send(0, 1, i);
        }
        let mut msgs = Vec::new();
        while let Some(d) = net.deliver_next() {
            msgs.push(d.msg);
        }
        let mut sorted = msgs.clone();
        sorted.sort_unstable();
        assert_ne!(msgs, sorted, "some messages overtook their neighbours");
    }

    #[test]
    fn spec_labels_and_probes() {
        assert_eq!(LatencyDist::Zero.label(), "zero");
        assert_eq!(LatencyDist::Fixed(3).label(), "fixed");
        assert_eq!(LatencyDist::Uniform { lo: 1, hi: 2 }.label(), "uniform");
        assert_eq!(LatencyDist::Uniform { lo: 1, hi: 9 }.max_delay(), 9);
        assert!(!NetworkSpec::default().is_lossy());
        assert!(NetworkSpec::default().with_drop(1).is_lossy());
        assert!(NetworkSpec::default()
            .with_latency(LatencyDist::Fixed(1))
            .is_lossy());
    }

    #[test]
    fn initial_contents_are_replicated() {
        let inner = VecRegisters::new(2);
        inner.write(1, 42);
        let mem = QuorumRegisters::new(inner, NetworkSpec::default());
        mem.note_actor(1);
        assert_eq!(mem.read(1), 42, "pre-seeded state visible through quorum");
        assert_eq!(mem.net_stats().atomicity_violations, 0);
    }
}
