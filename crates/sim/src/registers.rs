use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

use amo_ostree::kernels;

/// Memory-ordering regime for [`AtomicRegisters`].
///
/// The paper's proofs assume *linearizable* (atomic) registers, which
/// [`MemOrder::SeqCst`] delivers unconditionally. The algorithm uses only
/// single-writer multi-reader registers, for which release/acquire coherence
/// is conjectured sufficient; [`MemOrder::AcqRel`] exposes that regime for
/// the ablation study (DESIGN.md D5) — it is *not* the verified default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemOrder {
    /// Sequentially consistent loads and stores (the verified default).
    #[default]
    SeqCst,
    /// `Acquire` loads, `Release` stores, `AcqRel` swaps.
    AcqRel,
}

impl MemOrder {
    #[inline]
    fn load(self) -> Ordering {
        match self {
            MemOrder::SeqCst => Ordering::SeqCst,
            MemOrder::AcqRel => Ordering::Acquire,
        }
    }

    #[inline]
    fn store(self) -> Ordering {
        match self {
            MemOrder::SeqCst => Ordering::SeqCst,
            MemOrder::AcqRel => Ordering::Release,
        }
    }

    #[inline]
    fn swap(self) -> Ordering {
        match self {
            MemOrder::SeqCst => Ordering::SeqCst,
            MemOrder::AcqRel => Ordering::AcqRel,
        }
    }
}

/// Counters of shared-memory traffic (part of the paper's work measure).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemWork {
    /// Number of shared reads performed.
    pub reads: u64,
    /// Number of shared writes performed.
    pub writes: u64,
    /// Number of read-modify-write operations (used only by RMW baselines;
    /// always zero for the paper's read/write algorithms).
    pub rmws: u64,
}

impl MemWork {
    /// Total shared-memory operations.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.rmws
    }
}

impl std::ops::Add for MemWork {
    type Output = MemWork;

    fn add(self, rhs: MemWork) -> MemWork {
        MemWork {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            rmws: self.rmws + rhs.rmws,
        }
    }
}

/// A flat file of atomic `u64` registers — the shared memory of the model.
///
/// Algorithms address cells by index; layout structs (e.g. `KkLayout` in
/// `amo-core`) map the paper's named arrays (`next`, `done[·][·]`, …) onto
/// this flat space. The `swap` operation exists solely for the test-and-set
/// *baselines*; the paper's algorithms never invoke it, which is asserted in
/// their tests.
pub trait Registers {
    /// Atomically reads cell `cell`.
    fn read(&self, cell: usize) -> u64;

    /// Reads cell `cell` like [`read`](Self::read) but defers the traffic
    /// accounting to the caller: batched hot loops
    /// ([`Process::step_many`](crate::Process::step_many) implementations)
    /// issue many `peek`s and report them in one
    /// [`note_reads`](Self::note_reads) call, replacing a per-access counter
    /// update with one addition per batch.
    ///
    /// The default implementation simply counts through `read` (and the
    /// default `note_reads` is then a no-op), so accounting stays exact for
    /// implementations that don't opt in. Implementations must override
    /// both methods together or neither.
    fn peek(&self, cell: usize) -> u64 {
        self.read(cell)
    }

    /// Accounts `reads` shared reads issued via [`peek`](Self::peek).
    fn note_reads(&self, reads: u64) {
        let _ = reads;
    }

    /// `true` when this register file maintains per-cell epochs (version
    /// counters) that announcement-caching processes may rely on.
    ///
    /// Epoch contract (the invariant the caches build on):
    ///
    /// * [`epoch`](Self::epoch) of a cell strictly increases on **every**
    ///   mutation of that cell (`write`, `swap`, snapshot `restore`, arena
    ///   reuse), and never otherwise;
    /// * therefore, if a process recorded `(value, epoch)` for a cell and a
    ///   later `epoch` call returns the same number, the cell still holds
    ///   `value` — a re-read may be served from the recorded copy;
    /// * [`global_epoch`](Self::global_epoch) increases on every mutation of
    ///   **any** cell, so an unchanged global epoch certifies that *no* cell
    ///   changed.
    ///
    /// The default is `false` — epoch queries then return constants and a
    /// cache must never skip a read. Only the deterministic simulator's
    /// [`VecRegisters`] enables it: under real concurrency the epoch probe
    /// and the value read are two separate loads, so the pair is not atomic
    /// and the invariant would be unsound ([`AtomicRegisters`] keeps it
    /// disabled by design).
    fn epochs_enabled(&self) -> bool {
        false
    }

    /// The epoch (version counter) of `cell`; see
    /// [`epochs_enabled`](Self::epochs_enabled) for the contract. Without
    /// epoch support the default returns `0` for every cell, which is safe
    /// only because `epochs_enabled` is `false`.
    fn epoch(&self, cell: usize) -> u64 {
        let _ = cell;
        0
    }

    /// Monotone counter of mutations across the whole file; see
    /// [`epochs_enabled`](Self::epochs_enabled) for the contract.
    fn global_epoch(&self) -> u64 {
        0
    }

    /// Atomically writes `value` into cell `cell`.
    fn write(&self, cell: usize, value: u64);

    /// Atomically swaps `value` into `cell`, returning the previous value.
    fn swap(&self, cell: usize, value: u64) -> u64;

    /// Number of cells in the register file.
    fn len(&self) -> usize;

    /// Returns `true` if the register file has no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shared-memory traffic counters accumulated so far.
    fn work(&self) -> MemWork;

    /// Announces `pid` as the acting process for subsequent accesses.
    ///
    /// The engine calls this before handing a decision's actions to a
    /// process; journaling backends
    /// ([`DurableRegisters`](crate::DurableRegisters)) use it to attribute
    /// write-ahead-log records to their writer. Purely volatile files
    /// ignore it — the default is a no-op, and the hook must not change
    /// any model-level observable (values, counters, epochs).
    #[inline]
    fn note_actor(&self, pid: usize) {
        let _ = pid;
    }

    /// Durability flush barrier at a commit point.
    ///
    /// The engine raises this for the acting process after every recorded
    /// `do` action and at termination; journaling backends promote the
    /// actor's write-behind buffer to stable storage (every write
    /// *preceding a perform* is thereby durable — the invariant at-most-once
    /// safety under storage faults rests on). No-op by default, and never
    /// observable at the model level.
    #[inline]
    fn perform_barrier(&self) {}

    /// Storage blackout at the crash of `pid`.
    ///
    /// The engine calls this when the adversary crashes a process;
    /// journaling backends lose the crashed process's unflushed records
    /// according to their fault regime and write the recovered image back
    /// into the volatile cells (see
    /// [`DurableRegisters`](crate::DurableRegisters)). No-op by default.
    #[inline]
    fn crash_blackout(&self, pid: usize) {
        let _ = pid;
    }
}

/// Deterministic, single-threaded register file for the simulator.
///
/// Cells are `Cell<u64>` so that reads can be accounted through a shared
/// reference; the whole structure is cheap to snapshot, which the exhaustive
/// explorer uses to enumerate states.
///
/// # Tracked-prefix epochs
///
/// The file maintains per-cell *epochs* satisfying the
/// [`Registers::epochs_enabled`] contract — this is what the
/// announcement-epoch caches of the KKβ processes key on. The
/// representation is a **tracked prefix**: a cell's epoch is the value of
/// the global mutation stamp at that cell's last mutation, and dense
/// per-cell storage exists only for cells `0..hi`, where `hi` is one past
/// the highest cell ever mutated (grown on demand). Every cell beyond the
/// tracked prefix reports the shared *base* epoch — the stamp at the last
/// whole-file event ([`reset`](VecRegisters::reset),
/// [`restore`](VecRegisters::restore), or creation).
///
/// Soundness: the stamp strictly increases on **every** mutation, so each
/// mutation event owns a globally unique epoch number. A recorded
/// `(value, epoch)` pair therefore validates iff the cell has not been
/// mutated since it was recorded — a whole-file event moves the base (and
/// drops the dense prefix) to a stamp no earlier recording can equal, so
/// caches primed against a previous life of the buffer (arena reuse,
/// explorer rewinds) can never validate.
///
/// Why a prefix and not a full vector: the mega workloads allocate
/// `m + m·n` cells (512 MB of values at `n = 10⁶`, `m = 64`) but mutate
/// only `O(performed jobs)` of them — with the interleaved (position-major)
/// `done` layout the written cells cluster at the low indices, so the dense
/// epoch storage stays proportional to the cells actually touched instead
/// of doubling the register file's footprint.
///
/// Epoch maintenance can be switched off entirely
/// ([`set_epoch_tracking`](VecRegisters::set_epoch_tracking)) for runs
/// whose processes never consult epochs (single-action granularity, where
/// the caches cannot skip anything); the file then reports
/// [`Registers::epochs_enabled`]` == false` and allocates no epoch storage
/// at all.
#[derive(Debug, Clone, Default)]
pub struct VecRegisters {
    cells: Vec<Cell<u64>>,
    /// Dense epochs for the tracked prefix (stamp at last mutation); cells
    /// beyond `epochs.len()` report `epoch_base`.
    epochs: RefCell<Vec<u64>>,
    /// Epoch of every cell beyond the tracked prefix (the stamp at the last
    /// whole-file event).
    epoch_base: Cell<u64>,
    /// High-water tracked-prefix length (the memory metric reported by
    /// [`epoch_mem_bytes`](VecRegisters::epoch_mem_bytes)).
    epoch_hw: Cell<usize>,
    /// `true` when epoch maintenance is switched off (field is the negated
    /// form so `Default` keeps tracking on).
    epochs_off: Cell<bool>,
    /// Mutations across all cells (monotone; never reset).
    stamp: Cell<u64>,
    reads: Cell<u64>,
    writes: Cell<u64>,
    rmws: Cell<u64>,
}

impl VecRegisters {
    /// Creates `cells` zero-initialised registers (the model's `init` value).
    pub fn new(cells: usize) -> Self {
        Self {
            cells: vec![Cell::new(0); cells],
            ..Self::default()
        }
    }

    /// Ensures the tracked prefix covers `cell` and records `stamp` as its
    /// epoch.
    #[inline]
    fn touch_epoch(&self, cell: usize, stamp: u64) {
        let mut epochs = self.epochs.borrow_mut();
        if cell >= epochs.len() {
            epochs.resize(cell + 1, self.epoch_base.get());
            if epochs.len() > self.epoch_hw.get() {
                self.epoch_hw.set(epochs.len());
            }
        }
        epochs[cell] = stamp;
    }

    /// Enables or disables per-cell epoch maintenance.
    ///
    /// Runs that never consult epochs (no quanta granted, so no
    /// announcement cache can skip a read) disable tracking to keep the
    /// write path a plain store and the epoch footprint at zero. Switching
    /// — either way — counts as a whole-file event: the stamp and base are
    /// bumped and the dense prefix dropped, so no recording made under the
    /// previous regime can validate afterwards.
    pub fn set_epoch_tracking(&self, enabled: bool) {
        if self.epochs_off.get() == enabled {
            let s = self.stamp.get() + 1;
            self.stamp.set(s);
            self.epoch_base.set(s);
            self.epochs.borrow_mut().clear();
            self.epochs_off.set(!enabled);
        }
    }

    /// Peak bytes of dense epoch storage this file held since its creation
    /// or last [`reset`](VecRegisters::reset) — the tracked-prefix
    /// high-water mark times the entry size. `0` when no cell was mutated
    /// with tracking on. Arena reuse resets the mark, so pooled runs report
    /// their own peak, not a previous tenant's.
    pub fn epoch_mem_bytes(&self) -> u64 {
        (self.epoch_hw.get() * std::mem::size_of::<u64>()) as u64
    }

    /// Resizes the file to `cells` zeroed registers, reusing the existing
    /// allocation (the arena fast path: no fresh pages, warm cache lines).
    ///
    /// Work counters are cleared; the global stamp is *not* — the reset is
    /// itself a whole-file mutation event, so the epoch base moves past
    /// every previously recorded epoch and the dense prefix is dropped,
    /// invalidating caches primed against the previous contents per the
    /// [`Registers::epochs_enabled`] contract.
    pub fn reset(&mut self, cells: usize) {
        let s = self.stamp.get() + 1;
        self.stamp.set(s);
        self.epoch_base.set(s);
        self.epochs.get_mut().clear();
        // The high-water mark is per lease: an arena-recycled buffer must
        // report the *next* run's peak, not the previous tenant's.
        self.epoch_hw.set(0);
        // Prefix clear through the runtime-dispatched kernel layer (the
        // arena fast path re-zeroes up to `m + m·n` cells per lease).
        let prefix = cells.min(self.cells.len());
        kernels::fill_cells(&self.cells[..prefix], 0);
        self.cells.resize(cells, Cell::new(0));
        self.reads.set(0);
        self.writes.set(0);
        self.rmws.set(0);
    }

    /// Snapshot of all cell values (used by the explorer and for debugging).
    pub fn snapshot(&self) -> Vec<u64> {
        self.cells.iter().map(Cell::get).collect()
    }

    /// Restores a snapshot previously taken with
    /// [`snapshot`](VecRegisters::snapshot).
    ///
    /// A whole-file event: every cell's epoch moves to the new base (a
    /// restore may change any value, and the explorer rewinds memory behind
    /// the processes' backs), so epoch caches never serve values from a
    /// different branch of an exploration.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length differs from the register count.
    pub fn restore(&self, snapshot: &[u64]) {
        assert_eq!(snapshot.len(), self.cells.len(), "snapshot size mismatch");
        let s = self.stamp.get() + 1;
        self.stamp.set(s);
        self.epoch_base.set(s);
        self.epochs.borrow_mut().clear();
        // Bulk value restore through the kernel layer (the explorer rewinds
        // whole register files per branch).
        kernels::copy_into_cells(&self.cells, snapshot);
    }

    /// Resets the traffic counters.
    pub fn reset_work(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.rmws.set(0);
    }
}

impl Registers for VecRegisters {
    #[inline]
    fn read(&self, cell: usize) -> u64 {
        self.reads.set(self.reads.get() + 1);
        self.cells[cell].get()
    }

    #[inline]
    fn peek(&self, cell: usize) -> u64 {
        self.cells[cell].get()
    }

    #[inline]
    fn note_reads(&self, reads: u64) {
        self.reads.set(self.reads.get() + reads);
    }

    #[inline]
    fn write(&self, cell: usize, value: u64) {
        self.writes.set(self.writes.get() + 1);
        let s = self.stamp.get() + 1;
        self.stamp.set(s);
        if !self.epochs_off.get() {
            self.touch_epoch(cell, s);
        }
        self.cells[cell].set(value);
    }

    #[inline]
    fn swap(&self, cell: usize, value: u64) -> u64 {
        self.rmws.set(self.rmws.get() + 1);
        let s = self.stamp.get() + 1;
        self.stamp.set(s);
        if !self.epochs_off.get() {
            self.touch_epoch(cell, s);
        }
        self.cells[cell].replace(value)
    }

    fn len(&self) -> usize {
        self.cells.len()
    }

    fn epochs_enabled(&self) -> bool {
        !self.epochs_off.get()
    }

    #[inline]
    fn epoch(&self, cell: usize) -> u64 {
        if self.epochs_off.get() {
            return 0;
        }
        let epochs = self.epochs.borrow();
        epochs
            .get(cell)
            .copied()
            .unwrap_or_else(|| self.epoch_base.get())
    }

    #[inline]
    fn global_epoch(&self) -> u64 {
        self.stamp.get()
    }

    fn work(&self) -> MemWork {
        MemWork {
            reads: self.reads.get(),
            writes: self.writes.get(),
            rmws: self.rmws.get(),
        }
    }
}

/// Real hardware-atomic register file for the thread runtime.
///
/// Traffic counters use relaxed atomics so accounting does not perturb the
/// ordering under test.
///
/// Epochs stay **disabled** here ([`Registers::epochs_enabled`] returns
/// `false`): under real concurrency an epoch probe and the value read are
/// two separate loads, so a cache could pair a stale value with a fresh
/// epoch. The announcement-epoch caches are a simulator-only optimisation.
#[derive(Debug, Default)]
pub struct AtomicRegisters {
    cells: Vec<AtomicU64>,
    order: MemOrder,
    reads: AtomicU64,
    writes: AtomicU64,
    rmws: AtomicU64,
}

impl AtomicRegisters {
    /// Creates `cells` zero-initialised registers with the given ordering.
    pub fn new(cells: usize, order: MemOrder) -> Self {
        let mut v = Vec::with_capacity(cells);
        v.resize_with(cells, || AtomicU64::new(0));
        Self {
            cells: v,
            order,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            rmws: AtomicU64::new(0),
        }
    }

    /// The ordering regime this file was created with.
    pub fn order(&self) -> MemOrder {
        self.order
    }

    /// Snapshot of all cell values (quiescent use only).
    pub fn snapshot(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect()
    }
}

impl Registers for AtomicRegisters {
    #[inline]
    fn read(&self, cell: usize) -> u64 {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.cells[cell].load(self.order.load())
    }

    #[inline]
    fn peek(&self, cell: usize) -> u64 {
        self.cells[cell].load(self.order.load())
    }

    #[inline]
    fn note_reads(&self, reads: u64) {
        self.reads.fetch_add(reads, Ordering::Relaxed);
    }

    #[inline]
    fn write(&self, cell: usize, value: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.cells[cell].store(value, self.order.store());
    }

    #[inline]
    fn swap(&self, cell: usize, value: u64) -> u64 {
        self.rmws.fetch_add(1, Ordering::Relaxed);
        self.cells[cell].swap(value, self.order.swap())
    }

    fn len(&self) -> usize {
        self.cells.len()
    }

    fn work(&self) -> MemWork {
        MemWork {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rmws: self.rmws.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_registers_read_write() {
        let m = VecRegisters::new(4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.read(0), 0, "cells start zeroed");
        m.write(2, 77);
        assert_eq!(m.read(2), 77);
        assert_eq!(m.swap(2, 5), 77);
        assert_eq!(m.read(2), 5);
    }

    #[test]
    fn vec_registers_work_accounting() {
        let m = VecRegisters::new(2);
        m.read(0);
        m.read(1);
        m.write(0, 1);
        m.swap(1, 2);
        let w = m.work();
        assert_eq!(
            w,
            MemWork {
                reads: 2,
                writes: 1,
                rmws: 1
            }
        );
        assert_eq!(w.total(), 4);
        m.reset_work();
        assert_eq!(m.work().total(), 0);
    }

    #[test]
    fn vec_registers_snapshot_restore() {
        let m = VecRegisters::new(3);
        m.write(0, 10);
        m.write(1, 20);
        let snap = m.snapshot();
        m.write(0, 99);
        m.write(2, 99);
        m.restore(&snap);
        assert_eq!(m.snapshot(), vec![10, 20, 0]);
    }

    #[test]
    #[should_panic(expected = "snapshot size mismatch")]
    fn restore_size_mismatch_panics() {
        VecRegisters::new(2).restore(&[1]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        VecRegisters::new(1).read(1);
    }

    #[test]
    fn atomic_registers_basic() {
        for order in [MemOrder::SeqCst, MemOrder::AcqRel] {
            let m = AtomicRegisters::new(3, order);
            assert_eq!(m.order(), order);
            m.write(1, 42);
            assert_eq!(m.read(1), 42);
            assert_eq!(m.swap(1, 7), 42);
            assert_eq!(m.snapshot(), vec![0, 7, 0]);
            assert_eq!(
                m.work(),
                MemWork {
                    reads: 1,
                    writes: 1,
                    rmws: 1
                }
            );
        }
    }

    #[test]
    fn atomic_registers_cross_thread() {
        let m = AtomicRegisters::new(1, MemOrder::SeqCst);
        std::thread::scope(|s| {
            s.spawn(|| m.write(0, 123));
        });
        assert_eq!(m.read(0), 123);
    }

    #[test]
    fn memwork_addition() {
        let a = MemWork {
            reads: 1,
            writes: 2,
            rmws: 3,
        };
        let b = MemWork {
            reads: 10,
            writes: 20,
            rmws: 30,
        };
        assert_eq!(
            a + b,
            MemWork {
                reads: 11,
                writes: 22,
                rmws: 33
            }
        );
    }

    #[test]
    fn empty_register_file() {
        let m = VecRegisters::new(0);
        assert!(m.is_empty());
        assert_eq!(m.snapshot(), Vec::<u64>::new());
    }

    #[test]
    fn epochs_move_only_on_mutation() {
        let m = VecRegisters::new(3);
        assert!(m.epochs_enabled());
        assert_eq!(m.epoch(1), 0);
        let g0 = m.global_epoch();
        m.read(1);
        m.peek(1);
        assert_eq!(m.epoch(1), 0, "reads leave epochs untouched");
        assert_eq!(m.global_epoch(), g0);
        m.write(1, 7);
        assert_eq!(m.epoch(1), 1);
        assert_eq!(m.epoch(0), 0, "other cells untouched");
        assert!(m.global_epoch() > g0);
        m.swap(1, 9);
        assert_eq!(m.epoch(1), 2);
    }

    #[test]
    fn restore_invalidates_epochs() {
        let m = VecRegisters::new(2);
        let snap = m.snapshot();
        m.write(0, 5);
        let (e0, e1, g) = (m.epoch(0), m.epoch(1), m.global_epoch());
        m.restore(&snap);
        assert!(m.epoch(0) > e0 && m.epoch(1) > e1, "every cell bumped");
        assert!(m.global_epoch() > g);
        assert_eq!(m.snapshot(), snap);
    }

    #[test]
    fn reset_clears_the_epoch_high_water_per_lease() {
        let mut m = VecRegisters::new(1024);
        m.write(700, 1);
        assert_eq!(m.epoch_mem_bytes(), 701 * 8);
        m.reset(1024);
        assert_eq!(m.epoch_mem_bytes(), 0, "next tenant starts from zero");
        m.write(3, 1);
        assert_eq!(m.epoch_mem_bytes(), 4 * 8, "peak is this run's own");
    }

    #[test]
    fn reset_reuses_allocation_and_keeps_epochs_monotone() {
        let mut m = VecRegisters::new(4);
        m.write(2, 9);
        m.read(2);
        let e2 = m.epoch(2);
        m.reset(2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.snapshot(), vec![0, 0], "values zeroed");
        assert_eq!(m.work().total(), 0, "work counters cleared");
        m.reset(4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.snapshot(), vec![0, 0, 0, 0]);
        assert!(
            m.epoch(2) > e2,
            "re-grown cell cannot revalidate a stale cache"
        );
    }

    #[test]
    fn epoch_storage_tracks_only_the_written_prefix() {
        let m = VecRegisters::new(1_000_000);
        assert_eq!(m.epoch_mem_bytes(), 0, "no mutation, no epoch storage");
        m.write(7, 1);
        m.write(3, 2);
        assert_eq!(
            m.epoch_mem_bytes(),
            8 * 8,
            "prefix covers 0..=7, not the whole file"
        );
        assert_eq!(m.epoch(3), m.global_epoch());
        assert_eq!(m.epoch(999_999), 0, "untouched tail reports the base");
        m.write(999, 3);
        assert_eq!(m.epoch_mem_bytes(), 1000 * 8);
    }

    #[test]
    fn untracked_tail_epochs_validate_and_invalidate_correctly() {
        let m = VecRegisters::new(100);
        // A cache records (0, epoch) for an untouched cell...
        let e = m.epoch(90);
        m.write(5, 1); // foreign mutation elsewhere
        assert_eq!(m.epoch(90), e, "untouched cell's epoch is stable");
        m.write(90, 7);
        assert_ne!(m.epoch(90), e, "mutation moves the cell past the base");
        let e2 = m.epoch(90);
        m.restore(&m.snapshot());
        assert_ne!(m.epoch(90), e2, "whole-file events invalidate everything");
        assert_ne!(m.epoch(90), e);
    }

    #[test]
    fn reset_moves_base_past_every_recorded_epoch() {
        let mut m = VecRegisters::new(8);
        for _ in 0..5 {
            m.write(2, 9); // drive cell 2's epoch well past the stamp of cell 0
        }
        let hot = m.epoch(2);
        m.reset(8);
        assert!(m.epoch(2) > hot, "base moves past the hottest dense epoch");
        m.write(2, 1);
        assert!(m.epoch(2) > hot, "regrown cell cannot reuse an old epoch");
    }

    #[test]
    fn epoch_tracking_can_be_disabled() {
        let m = VecRegisters::new(16);
        m.set_epoch_tracking(false);
        assert!(!m.epochs_enabled());
        m.write(3, 5);
        assert_eq!(m.epoch(3), 0, "disabled files answer like the default");
        assert_eq!(m.epoch_mem_bytes(), 0, "no epoch storage accrues");
        assert_eq!(m.read(3), 5, "values are unaffected");
        // Re-enabling is a whole-file event: nothing recorded before (under
        // either regime) may validate afterwards.
        let g = m.global_epoch();
        m.set_epoch_tracking(true);
        assert!(m.epochs_enabled());
        assert!(m.global_epoch() > g);
        assert_eq!(m.epoch(3), m.global_epoch());
    }

    #[test]
    fn atomic_registers_report_epochs_disabled() {
        let m = AtomicRegisters::new(2, MemOrder::SeqCst);
        assert!(!m.epochs_enabled());
        m.write(0, 1);
        assert_eq!(m.epoch(0), 0);
        assert_eq!(m.global_epoch(), 0);
    }
}
