//! Asynchronous shared-memory substrate for the at-most-once algorithms.
//!
//! The paper (§2.1) models a multiprocessor as `m` asynchronous, crash-prone
//! processes — I/O automata — communicating through atomic read/write
//! registers, driven by an *omniscient on-line adversary* that controls both
//! the interleaving and up to `f < m` crashes. This crate is a from-scratch
//! implementation of that model, plus a real-thread runtime so the same
//! automatons can execute on actual hardware atomics:
//!
//! * [`Registers`] — the shared-memory abstraction: a flat file of `u64`
//!   cells with `read`/`write` (and `swap` for RMW-based baselines).
//!   Implementations: [`VecRegisters`] (deterministic simulation) and
//!   [`AtomicRegisters`] (real `AtomicU64`s with configurable ordering).
//! * [`Process`] — an automaton executed one *action* at a time; each action
//!   performs **at most one shared-memory access**, which is exactly the
//!   atomicity granularity of the paper's model.
//! * [`Scheduler`] — the adversary: decides at every step which process acts
//!   or crashes. Ships with round-robin, seeded-random, bursty and scripted
//!   strategies; paper-specific adversaries live in `amo-core`.
//! * [`Engine`] — runs a fleet of processes under a scheduler and records an
//!   [`Execution`]: who performed which jobs, at which step, with full work
//!   accounting (Definition 2.5).
//! * [`explore`] — a bounded exhaustive explorer (a small model checker)
//!   that enumerates *every* schedule and crash pattern of small instances
//!   and machine-checks the at-most-once property along all of them.
//! * [`scenario`] — the unified scenario layer: one declarative
//!   [`ScenarioSpec`] (scheduler, crash plan, limits, quantum, epoch-cache
//!   policy, backend, instrumentation) plus the generic [`run_scenario`]
//!   driver every algorithm crate's simulated runner routes through, with
//!   an open adversary registry ([`ScenarioHooks`]). Backends plug in
//!   without touching algorithm crates: processes are written once against
//!   `R:`[`Registers`], and [`run_scenario_on`] drives any fleet over any
//!   register file.
//! * [`net`] — simulated message passing: [`QuorumRegisters`] implements
//!   [`Registers`] over a majority-quorum replica set with one-and-a-half
//!   round reads, driven by a deterministic seeded [`NetworkModel`] and a
//!   packet-budgeted Omega-style failure detector.
//! * [`thread`] — the same fleet on OS threads over [`AtomicRegisters`].
//! * [`arena`] — reusable register-file buffers ([`FleetArena`]) for
//!   grid-style multi-fleet workloads.
//!
//! # The quantum / `step_many` contract
//!
//! Schedulers grant each decision a *quantum* ([`Scheduler::quantum`],
//! default `1`): how many consecutive actions the chosen process may
//! execute before the adversary is consulted again. A quantum `> 1` opts
//! into the engine's macro-stepping fast path, which hands the whole
//! quantum to the process as batched [`Process::step_many`] calls. Batching
//! is **observationally invisible** by contract: a batch must behave
//! exactly like the same number of single [`Process::step`]s — the same
//! shared accesses in the same order and with the same counts, the same
//! `do` actions at the same global step indices, the same local-work
//! accounting, the same final state. The `batch_equivalence` suites (in
//! this crate, `amo-core`, `amo-iterative` and `amo-write-all`) enforce the
//! contract by running every workload through both [`Engine::single_step`]
//! (the per-action reference) and the fast path and requiring identical
//! [`Execution`]s. Adversarial schedulers keep quantum `1` and are
//! bit-for-bit unaffected; tracing ([`Engine::with_trace`]) forces
//! single-step granularity so every action is attributed.
//!
//! # Register epochs (the announcement-cache invariant)
//!
//! [`Registers`] optionally exposes per-cell *epochs* plus a global
//! mutation stamp ([`Registers::epochs_enabled`]): a cell's epoch strictly
//! increases on every mutation of that cell (writes, swaps, snapshot
//! restores, arena reuse) and the global epoch increases on every mutation
//! of any cell. A process that recorded `(value, epoch)` for a cell and
//! later sees the same epoch may therefore serve a re-read from its local
//! copy, and an unchanged global epoch certifies that *nothing* changed —
//! which is what lets the KKβ announcement caches collapse whole
//! `gatherTry`/`gatherDone` sweeps into their accounting between failures.
//! Model-level observables are untouched: a cached read is still counted
//! as one shared read and surfaces as [`StepEvent::CachedRead`] on the
//! traced path. Only the deterministic [`VecRegisters`] enables epochs;
//! [`AtomicRegisters`] keeps them disabled because an epoch probe and a
//! value load are not atomic together under real concurrency.
//!
//! # Sharded phased execution (determinism invariants)
//!
//! [`ScenarioSpec::shard`](scenario::ScenarioSpec::shard) routes
//! [`run_scenario`] to the [`shard`] driver: the fleet is partitioned into
//! `S` contiguous-pid shards whose turns execute on worker threads between
//! *communication epochs*. The invariants that keep this bit-exactly
//! reproducible (pinned by `shard_equivalence` and `prop_shard`):
//!
//! * **Merge-key ordering.** All shared writes of an epoch are buffered in
//!   per-shard publication logs and replayed into the backing
//!   [`VecRegisters`] at the barrier in `(epoch, pid, local_seq)` order —
//!   epoch-major, pid-major, program-order within a turn. Because the
//!   ordering key never mentions shards or threads, the global mutation
//!   stamp, per-cell epochs, `epoch_mem_bytes` and all work counters evolve
//!   along one canonical sequence: every `(S, threads)` combination
//!   produces the identical [`Execution`].
//! * **The epoch-barrier contract.** During an epoch every shared read is
//!   served from the snapshot frozen at the previous barrier (plus the
//!   process's own same-turn writes); a turn keeps foreign reads before
//!   writes ([`Process::step_turn`]), so the phased run is sequentially
//!   consistent and the at-most-once algorithms — safe under *every* SC
//!   schedule — remain safe. KKβ stops each turn at `gatherTry`: announce
//!   first, let the barrier publish, gather next epoch (Dekker's
//!   announce-then-gather at epoch granularity).
//! * **Why [`AtomicRegisters`] stays excluded.** Under real concurrency
//!   there is no barrier at which a deterministic merge order could be
//!   imposed — the hardware interleaving *is* the schedule. Sharding is a
//!   property of the deterministic simulator only (`Vec` backend);
//!   likewise `swap`-based baselines cannot shard because a
//!   read-modify-write is not servable from a frozen snapshot.
//!
//! # Durability invariants (the `Durable` backend)
//!
//! [`BackendSpec::Durable`](scenario::BackendSpec::Durable) wraps the
//! volatile [`VecRegisters`] in [`DurableRegisters`]: every mutation is
//! journaled into a write-ahead log over a base snapshot, each process
//! writing through its own *write-behind buffer*. What survives a crash:
//!
//! * **Flushed records are durable forever.** The engine raises a flush
//!   barrier ([`Registers::perform_barrier`]) for the acting process at
//!   every recorded `do` action and at termination, so every write a
//!   process issued *before* performing a job is on stable storage by the
//!   time the perform is recorded.
//! * **Only the crasher's soft suffix is at risk.** A crash triggers a
//!   blackout ([`Registers::crash_blackout`]): the configured
//!   [`StorageFault`] decides how much of the crashed process's
//!   journaled-but-unflushed suffix survives (all of it, a seeded prefix,
//!   or none), and recovery replays the surviving log over the snapshot
//!   back into the register file. Survivors' buffers are untouched.
//! * **A torn write can expose no corrupt value.** Torn (partially
//!   persisted) records fail their checksum on recovery and are truncated
//!   away with everything after them — the fault surface is always a
//!   *rollback to a write-order prefix*, never garbage.
//!
//! Why at-most-once still holds in every fault cell: a performed job's
//! protecting writes (its announcement/claim) precede the perform, hence
//! are durable and never regress; a blackout therefore reverts a crashed
//! process exactly to its shared state at its last perform — a state
//! reachable in a legal crash-stop execution — and stale values other
//! processes may have read from the lost suffix only ever *exclude* jobs
//! (announcements of processes that died before performing), costing
//! effectiveness, never safety. The fault-free `Durable` backend is
//! bit-identical to [`VecRegisters`] (journaling is a pure side effect),
//! which the equivalence suites pin counter-for-counter.
//!
//! # Network-model invariants (the `Quorum` backend)
//!
//! [`BackendSpec::Quorum`](scenario::BackendSpec::Quorum) implements the
//! registers by message passing: `k` replica servers each hold a
//! `(tag, value)` pair per cell, and every register operation runs a quorum
//! protocol over a seeded [`NetworkModel`] (latency distributions, drops,
//! reordering, replica crashes). The invariants the suites pin:
//!
//! * **Quorum intersection.** Every phase waits for `⌈(k+1)/2⌉` distinct
//!   replica replies, and any two majorities intersect in at least one
//!   replica. A completed write leaves its tag at a majority, so every
//!   later read's query majority contains at least one replica holding a
//!   tag `≥` it — a newer value can never become invisible, and monotone
//!   tag application at replicas (`Put` applies only if its tag is larger)
//!   makes duplicated or reordered retransmissions harmless.
//! * **Why one-and-a-half-round reads preserve atomicity.** A reader
//!   returns the maximum `(tag, value)` of its query majority. If *every*
//!   reply already carried that tag, the value is provably durable at a
//!   majority and the read completes in one round. Otherwise the reader
//!   spends the extra half round propagating `(tag, value)` to a majority
//!   before returning — so a returned value is *always* quorum-durable,
//!   and no subsequent read can return an older one (the à-la-*Oh-RAM!*
//!   construction).
//! * **Failure-detector budget semantics.** Explicit liveness probes go
//!   only to the current leader (lowest unsuspected replica) and stop
//!   forever once [`NetworkSpec::fd_packet_budget`] packets were spent;
//!   liveness otherwise piggybacks on protocol replies, and suspicion is
//!   raised only after repeated unanswered retransmissions past the
//!   suspicion horizon. Suspicion is an optimisation, never a safety input:
//!   quorum thresholds always count over all `k` replicas, suspected
//!   replicas are merely skipped when broadcasting (with a fall-back to
//!   everyone when too few unsuspected remain), and replica crashes are
//!   clamped to a minority so every operation terminates.
//!
//! The degenerate network (zero latency, no loss, no crashes) is
//! bit-identical to [`VecRegisters`] — pinned counter-for-counter by the
//! `quorum_equivalence` suite — and in *every* regime the protocol result
//! is cross-checked against the authoritative register file
//! ([`NetStats::atomicity_violations`], pinned at zero).
//!
//! # Chaos invariants (the [`chaos`] module)
//!
//! A [`ChaosPlan`] composes every fault axis above into one seeded
//! schedule — crashes/restarts, a storage blackout regime, a network
//! environment, a named adversary, shard-worker panics — and
//! [`ChaosPlan::lower_onto`] folds it onto any base [`ScenarioSpec`], so
//! every existing driver accepts the chaos dimension with zero
//! algorithm-crate edits. The contracts the suites pin:
//!
//! * **Quiet-plan identity.** A plan with no events lowers to a spec that
//!   produces a bit-identical [`Execution`] — the chaos dimension is
//!   observationally free until a fault is actually scheduled (pinned for
//!   all four algorithm stacks by the workspace `chaos_equivalence`
//!   suite).
//! * **One backend axis per run.** A plan scheduling both a storage and a
//!   network event panics at lowering: one run has one register file.
//!   Sharded bases reject backend, adversary and restart events with the
//!   same loud messages as [`run_scenario_sharded`] itself.
//! * **Seeded drawing is a pure function.** [`ChaosPlan::draw`] maps
//!   `(seed, intensity, space)` to a plan deterministically, gated by a
//!   [`ChaosSpace`] so a drawn plan is always executable by the stack it
//!   is drawn for (restarts only where `on_restart` exists, adversaries
//!   only where a registry resolves them); crash counts respect `f < m`.
//! * **Shrinker determinism.** [`shrink_plan`] delta-debugs a failing
//!   plan — greedy event removal, then per-field halving, to a fixed
//!   point, in one documented candidate order — so a deterministic
//!   failure predicate yields the *same* minimal reproducer on every run.
//! * **Replay exactness.** [`ChaosPlan::to_replay`] emits a hand-rolled
//!   line-based snippet (`chaos-plan v1`) and
//!   [`ChaosPlan::parse_replay`] inverts it exactly; adversary names
//!   resolve against the static [`chaos::KNOWN_ADVERSARIES`] dictionary,
//!   so parsed plans still carry `&'static str` registry names.
//! * **Worker panics are armed, not lowered.** [`ChaosPlan::arm`]
//!   registers `(worker, epoch)` panic points thread-locally
//!   ([`pool::arm_chaos_panics`]); the next sharded run drains them at
//!   start and panics the worker indexed `worker % threads` at the epoch
//!   boundary — surfacing through the panic-safe barrier protocol to the
//!   caller under every thread count, never deadlocking. The RAII guard
//!   disarms leftovers so plans cannot leak panics into unrelated runs.
//!
//! # Examples
//!
//! ```
//! use amo_sim::{Engine, EngineLimits, RoundRobin, VecRegisters};
//! use amo_sim::testing::WriterProcess;
//!
//! // Two trivial automatons each write their pid into their own cell.
//! let mem = VecRegisters::new(2);
//! let procs = vec![WriterProcess::new(1, 0, 3), WriterProcess::new(2, 1, 3)];
//! let exec = Engine::new(mem, procs, RoundRobin::new()).run(EngineLimits::default());
//! assert!(exec.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod chaos;
mod crash;
mod durable;
mod engine;
mod explore;
pub mod net;
pub mod pool;
mod process;
mod registers;
pub mod scenario;
mod sched;
pub mod shard;
pub mod testing;
pub mod thread;
mod timeline;
mod verify;

pub use arena::FleetArena;
pub use chaos::{shrink_plan, ChaosEvent, ChaosGuard, ChaosPlan, ChaosSpace, Intensity};
pub use crash::CrashPlan;
pub use durable::{DurableRegisters, DurableStats, StorageFault};
pub use engine::{Engine, EngineLimits, Execution, LifeState, PerformRecord, Slot, TraceEntry};
pub use explore::{explore, ExploreConfig, ExploreOutcome, MemoMode};
pub use net::{Delivery, LatencyDist, NetStats, NetworkModel, NetworkSpec, QuorumRegisters};
pub use process::{BatchOutcome, JobSpan, Process, StepEvent};
pub use registers::{AtomicRegisters, MemOrder, MemWork, Registers, VecRegisters};
pub use scenario::{
    boxed, last_net_stats, run_scenario, run_scenario_dyn, run_scenario_in, run_scenario_on,
    BackendSpec, BoxProcess, DynProcess, ScenarioHooks, ScenarioProcess, ScenarioSpec,
    SchedulerSpec,
};
pub use sched::{
    BlockScheduler, Decision, RandomScheduler, RoundRobin, SchedView, Scheduler, ScriptedScheduler,
    WithCrashes,
};
pub use shard::{run_scenario_sharded, ShardRegisters, ShardSpec};
pub use thread::{ThreadExecution, ThreadPerform, ThreadSpec};
pub use timeline::render_timeline;
pub use verify::{at_most_once_violations, distinct_jobs, perform_summary, JobCounts, Violation};
