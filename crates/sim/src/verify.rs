use std::collections::HashMap;

use crate::process::JobSpan;

/// A job performed more than once — a violation of Definition 2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The job that was repeated.
    pub job: u64,
    /// How many times it was performed (`≥ 2`).
    pub count: u32,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} performed {} times", self.job, self.count)
    }
}

/// Multiset of performed jobs, used to check the at-most-once property
/// incrementally (the explorer threads one of these through its search).
#[derive(Debug, Clone, Default)]
pub struct JobCounts {
    counts: HashMap<u64, u32>,
}

impl JobCounts {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one performance of every job in `span`; returns the first job
    /// of the span that had already been performed, if any.
    pub fn record(&mut self, span: JobSpan) -> Option<u64> {
        let mut dup = None;
        for job in span.jobs() {
            let c = self.counts.entry(job).or_insert(0);
            *c += 1;
            if *c > 1 && dup.is_none() {
                dup = Some(job);
            }
        }
        dup
    }

    /// Reverts a previous [`record`](Self::record) of `span` (explorer
    /// backtracking).
    pub fn unrecord(&mut self, span: JobSpan) {
        for job in span.jobs() {
            match self.counts.get_mut(&job) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.counts.remove(&job);
                }
                None => panic!("unrecord of job {job} that was never recorded"),
            }
        }
    }

    /// Number of distinct jobs performed (`Do(α)`, Definition 2.1).
    pub fn distinct(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Times `job` has been performed.
    pub fn count(&self, job: u64) -> u32 {
        self.counts.get(&job).copied().unwrap_or(0)
    }

    /// Iterates over `(job, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counts.iter().map(|(&j, &c)| (j, c))
    }

    /// All violations accumulated so far, sorted by job id.
    pub fn violations(&self) -> Vec<Violation> {
        let mut v: Vec<Violation> = self
            .counts
            .iter()
            .filter(|(_, &c)| c > 1)
            .map(|(&job, &count)| Violation { job, count })
            .collect();
        v.sort_by_key(|x| x.job);
        v
    }
}

/// Scans performed spans and returns every at-most-once violation.
///
/// # Examples
///
/// ```
/// use amo_sim::{at_most_once_violations, JobSpan};
///
/// let spans = [JobSpan::new(1, 4), JobSpan::single(3)];
/// let v = at_most_once_violations(spans);
/// assert_eq!(v.len(), 1);
/// assert_eq!(v[0].job, 3);
/// ```
pub fn at_most_once_violations<I: IntoIterator<Item = JobSpan>>(spans: I) -> Vec<Violation> {
    let mut ledger = JobCounts::new();
    for s in spans {
        ledger.record(s);
    }
    ledger.violations()
}

/// `Do(α)` over a sequence of performed spans: the number of distinct jobs.
pub fn distinct_jobs<I: IntoIterator<Item = JobSpan>>(spans: I) -> u64 {
    let mut ledger = JobCounts::new();
    for s in spans {
        ledger.record(s);
    }
    ledger.distinct()
}

/// One-pass dense summary of a perform history: `(Do(α), violations)`.
///
/// Job ids are dense (`1..=n`), so a flat `Vec<u32>` keyed by job replaces
/// the hash ledger, and a single pass over the records serves both the
/// effectiveness count and the violation scan. The hash-based
/// [`distinct_jobs`] + [`at_most_once_violations`] pair costs two full
/// SipHash table builds over every record, which dominated the epilogue of
/// large simulated runs (hundreds of milliseconds at `n = 10⁶`); the
/// incremental [`JobCounts`] ledger remains for the explorer, which needs
/// `unrecord`.
///
/// Violations are returned sorted by job id, exactly like
/// [`at_most_once_violations`].
pub fn perform_summary<I: IntoIterator<Item = JobSpan>>(spans: I) -> (u64, Vec<Violation>) {
    let mut counts: Vec<u32> = Vec::new();
    let mut distinct = 0u64;
    for s in spans {
        let hi = s.hi as usize;
        if hi > counts.len() {
            counts.resize(hi, 0);
        }
        for job in s.jobs() {
            let c = &mut counts[job as usize - 1];
            *c += 1;
            if *c == 1 {
                distinct += 1;
            }
        }
    }
    // Violation scan through the runtime-dispatched kernel layer: almost
    // every count is ≤ 1 in a correct execution, so the wide tier skips
    // eight counts per compare and the scan degenerates to a handful of
    // hits (this pass is epilogue bookkeeping — it charges no `local_work`).
    let mut violations = Vec::new();
    let mut idx = 0usize;
    while let Some(i) = amo_ostree::kernels::find_gt(&counts, 1, idx) {
        violations.push(Violation {
            job: i as u64 + 1,
            count: counts[i],
        });
        idx = i + 1;
    }
    (distinct, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_clean() {
        assert!(at_most_once_violations([]).is_empty());
        assert_eq!(distinct_jobs([]), 0);
    }

    #[test]
    fn disjoint_spans_are_clean() {
        let spans = [JobSpan::new(1, 10), JobSpan::new(11, 20)];
        assert!(at_most_once_violations(spans).is_empty());
        assert_eq!(distinct_jobs(spans), 20);
    }

    #[test]
    fn overlap_is_reported_per_job() {
        let spans = [JobSpan::new(1, 5), JobSpan::new(4, 8)];
        let v = at_most_once_violations(spans);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], Violation { job: 4, count: 2 });
        assert_eq!(v[1], Violation { job: 5, count: 2 });
        assert_eq!(distinct_jobs(spans), 8);
    }

    #[test]
    fn triple_performance_counts() {
        let spans = [JobSpan::single(7), JobSpan::single(7), JobSpan::single(7)];
        let v = at_most_once_violations(spans);
        assert_eq!(v, vec![Violation { job: 7, count: 3 }]);
    }

    #[test]
    fn ledger_record_reports_first_duplicate() {
        let mut l = JobCounts::new();
        assert_eq!(l.record(JobSpan::new(1, 3)), None);
        assert_eq!(l.record(JobSpan::new(2, 4)), Some(2));
        assert_eq!(l.count(2), 2);
        assert_eq!(l.distinct(), 4);
    }

    #[test]
    fn ledger_unrecord_backtracks() {
        let mut l = JobCounts::new();
        l.record(JobSpan::new(1, 3));
        l.record(JobSpan::single(2));
        l.unrecord(JobSpan::single(2));
        assert!(l.violations().is_empty());
        l.unrecord(JobSpan::new(1, 3));
        assert_eq!(l.distinct(), 0);
    }

    #[test]
    #[should_panic(expected = "never recorded")]
    fn unrecord_unknown_panics() {
        JobCounts::new().unrecord(JobSpan::single(1));
    }

    #[test]
    fn violation_display() {
        let v = Violation { job: 3, count: 2 };
        assert_eq!(v.to_string(), "job 3 performed 2 times");
    }
}
