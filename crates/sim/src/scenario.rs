//! The unified scenario layer: one declarative [`ScenarioSpec`] and one
//! generic [`run_scenario`] driver shared by **every** algorithm stack.
//!
//! # Why a scenario layer
//!
//! The paper's effectiveness claims (KKβ vs. the iterated and Write-All
//! constructions) are only meaningful when every algorithm is exercised
//! under the *same* schedulers, crash plans and scales. Historically each
//! crate carried its own runner stack (`amo_core::SimOptions`,
//! `amo_iterative::IterSimOptions`, the Write-All and baseline runners), so
//! adversaries existed only for the algorithm whose crate defined them and
//! every new scheduler, backend or engine knob had to be threaded through
//! four parallel option structs. The scenario layer inverts that: a
//! [`ScenarioSpec`] describes a complete simulated execution environment —
//! scheduler, crash plan, limits, quantum, epoch-cache policy, engine path,
//! register backend, collision instrumentation — and [`run_scenario`]
//! drives *any* fleet of [`ScenarioProcess`]es through it. The per-crate
//! option structs survive as thin converting adapters
//! (`SimOptions::to_scenario`, `IterSimOptions::to_scenario`, …) that lower
//! into a spec, bit-identically.
//!
//! # The adversary registry
//!
//! Fair schedulers (round-robin, seeded random, bursty blocks) are built
//! in: [`SchedulerSpec`] names them structurally and they apply to every
//! process type. *Algorithm-specific* adversaries — schedulers that inspect
//! process internals, like KKβ's stuck-announcement or staleness
//! adversaries — are requested **by name** via
//! [`SchedulerSpec::Adversary`] and resolved through the
//! [`ScenarioHooks::adversary`] factory, which each process type's home
//! crate implements. The capability rules:
//!
//! * a process type supports exactly the names its factory resolves
//!   ([`ScenarioHooks::supports_adversary`] probes without running);
//! * requesting an unsupported name is a harness bug and panics with the
//!   offending name — scenario grids must probe support first;
//! * adversaries keep the engine's single-step granularity (quantum 1) by
//!   contract: the factory returns plain [`Scheduler`]s, whose default
//!   [`Scheduler::quantum`] is 1, and [`ScenarioSpec::quantum`] is only
//!   consulted for the built-in fair schedulers.
//!
//! # Examples
//!
//! Driving a toy fleet under a bursty scheduler with a crash:
//!
//! ```
//! use amo_sim::testing::WriterProcess;
//! use amo_sim::{run_scenario, CrashPlan, ScenarioSpec, VecRegisters};
//!
//! let fleet = vec![WriterProcess::new(1, 0, 40), WriterProcess::new(2, 1, 40)];
//! let spec = ScenarioSpec::block(7, 4).with_crash_plan(CrashPlan::at_steps([(2usize, 5u64)]));
//! let (exec, _slots, _mem) = run_scenario(VecRegisters::new(2), fleet, &spec);
//! assert!(exec.completed);
//! assert_eq!(exec.crashed, vec![2]);
//! ```

use std::cell::Cell;

use crate::arena::FleetArena;
use crate::crash::CrashPlan;
use crate::durable::{DurableRegisters, StorageFault};
use crate::engine::{Engine, EngineLimits, Execution, Slot};
use crate::net::{NetStats, NetworkSpec, QuorumRegisters};
use crate::process::Process;
use crate::registers::{Registers, VecRegisters};
use crate::sched::{BlockScheduler, RandomScheduler, RoundRobin, Scheduler, WithCrashes};
use crate::shard::{run_scenario_sharded, ShardRegisters, ShardSpec};

/// Scheduling strategy of a [`ScenarioSpec`]: the built-in fair schedulers
/// structurally, or a named algorithm-specific adversary resolved through
/// the [`ScenarioHooks::adversary`] registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SchedulerSpec {
    /// Fair round-robin ([`RoundRobin`]); honours
    /// [`ScenarioSpec::quantum`].
    #[default]
    RoundRobin,
    /// Seeded uniform-random ([`RandomScheduler`]); honours
    /// [`ScenarioSpec::quantum`].
    Random(
        /// RNG seed.
        u64,
    ),
    /// Seeded bursty schedule ([`BlockScheduler`]) — the burst is its own
    /// quantum, so [`ScenarioSpec::quantum`] is ignored.
    Block(
        /// RNG seed.
        u64,
        /// Actions per burst.
        u64,
    ),
    /// A named algorithm-specific adversary, resolved through
    /// [`ScenarioHooks::adversary`]. Always single-step (quantum 1).
    Adversary(
        /// Registry name (e.g. `"lockstep"`, `"stuck-announcement"`,
        /// `"staleness"`), doubling as the report label.
        &'static str,
    ),
}

impl SchedulerSpec {
    /// Human-readable label for report rows; for adversaries this is the
    /// registry name itself.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerSpec::RoundRobin => "round-robin",
            SchedulerSpec::Random(_) => "random",
            SchedulerSpec::Block(..) => "block",
            SchedulerSpec::Adversary(name) => name,
        }
    }

    /// `true` for [`SchedulerSpec::Adversary`].
    pub fn is_adversary(&self) -> bool {
        matches!(self, SchedulerSpec::Adversary(_))
    }
}

/// Register-file backend of a simulated scenario.
///
/// Threaded execution over [`AtomicRegisters`](crate::AtomicRegisters)
/// stays a separate entry point by design: real threads have no
/// deterministic scheduler to spec.
///
/// The enum (and its field-carrying variants) are `#[non_exhaustive]`:
/// downstream code constructs backends through the builder constructors
/// ([`BackendSpec::durable`], [`BackendSpec::quorum`],
/// [`BackendSpec::quorum_with`]) and matches with a wildcard arm, so future
/// backend variants stop breaking struct literals and match arms outside
/// this crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BackendSpec {
    /// Deterministic in-memory registers with tracked-prefix epochs
    /// ([`VecRegisters`]).
    #[default]
    Vec,
    /// [`VecRegisters`] wrapped in the WAL-journaling
    /// [`DurableRegisters`]: crashes trigger storage blackouts under the
    /// configured fault regime, and crashed processes may restart (see
    /// [`CrashPlan::restart_after`]). With [`StorageFault::None`] this
    /// backend is bit-identical to [`BackendSpec::Vec`] — journaling is a
    /// pure side effect — which the equivalence suites pin.
    #[non_exhaustive]
    Durable {
        /// What a crash does to the crasher's unflushed journal suffix.
        fault: StorageFault,
        /// Seed for the fault model's deterministic randomness (torn /
        /// truncation cut points, stale-read coin flips).
        seed: u64,
    },
    /// [`VecRegisters`] wrapped in the quorum-replicated message-passing
    /// [`QuorumRegisters`]: every register operation runs the one-and-a-half
    /// round read / two-round write protocol over a seeded network with
    /// configurable latency, drops, reordering and replica-server crashes
    /// (see [`crate::net`]). A lossless zero-latency network is
    /// bit-identical to [`BackendSpec::Vec`], which the equivalence suites
    /// pin; [`last_net_stats`] surfaces the protocol counters after a run.
    #[non_exhaustive]
    Quorum {
        /// The simulated network environment.
        net: NetworkSpec,
    },
}

impl BackendSpec {
    /// Builder for the durable backend (preferred over the struct literal,
    /// which the `#[non_exhaustive]` variant forbids downstream).
    pub fn durable(fault: StorageFault, seed: u64) -> Self {
        BackendSpec::Durable { fault, seed }
    }

    /// Builder for a quorum backend over `replicas` servers on a lossless
    /// zero-latency network (the `Vec`-equivalent degenerate case).
    pub fn quorum(replicas: u8) -> Self {
        BackendSpec::Quorum {
            net: NetworkSpec::lossless(replicas),
        }
    }

    /// Builder for a quorum backend over an arbitrary network environment.
    pub fn quorum_with(net: NetworkSpec) -> Self {
        BackendSpec::Quorum { net }
    }

    /// Human-readable label for report rows.
    pub fn label(&self) -> &'static str {
        match self {
            BackendSpec::Vec => "vec",
            BackendSpec::Durable { .. } => "durable",
            BackendSpec::Quorum { .. } => "quorum",
        }
    }

    /// The storage-fault regime, when this backend injects one.
    pub fn fault(&self) -> Option<StorageFault> {
        match self {
            BackendSpec::Durable { fault, .. } => Some(*fault),
            _ => None,
        }
    }

    /// The network environment, when this backend simulates one.
    pub fn net(&self) -> Option<NetworkSpec> {
        match self {
            BackendSpec::Quorum { net } => Some(*net),
            _ => None,
        }
    }
}

/// A declarative description of one simulated execution environment,
/// consumed by [`run_scenario`].
///
/// A spec is algorithm-agnostic: the same value can drive a KKβ fleet, an
/// iterated stage, a Write-All fleet or any baseline, which is what makes
/// cross-algorithm scenario grids (`amo-bench`'s `scenario_matrix`)
/// honest — every cell runs under literally the same environment.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scheduling strategy (see [`SchedulerSpec`]).
    pub scheduler: SchedulerSpec,
    /// Deterministic crash injection, composed with any scheduler through
    /// [`WithCrashes`]. Adversaries that crash processes themselves (e.g.
    /// KKβ's stuck-announcement) share the engine-enforced `f ≤ m − 1`
    /// budget with the plan.
    pub crash_plan: CrashPlan,
    /// Step cap (defaults to [`EngineLimits::default`]'s 200M actions).
    pub limits: EngineLimits,
    /// Actions granted per scheduler turn for the quantum-honouring
    /// built-ins ([`SchedulerSpec::RoundRobin`], [`SchedulerSpec::Random`]).
    /// `> 1` opts into the engine's macro-stepping fast path. Ignored by
    /// [`SchedulerSpec::Block`] (bursts carry their own quantum) and by
    /// adversaries (single-step by contract).
    pub quantum: u64,
    /// Enables the announcement-epoch caches on processes that have one
    /// (via [`ScenarioHooks::set_epoch_cache`]) and epoch maintenance on
    /// the register file. Takes effect only when the scheduler grants
    /// quanta ([`grants_quanta`](Self::grants_quanta)) — under single-action
    /// granularity a cache can skip no load by design, so both stay off to
    /// keep the per-action path lean.
    pub epoch_cache: bool,
    /// Forces the engine's per-action reference path even when the
    /// scheduler grants quanta (see [`Engine::single_step`]); used by the
    /// equivalence suites and for debugging.
    pub reference_single_step: bool,
    /// Register-file backend (see [`BackendSpec`]).
    pub backend: BackendSpec,
    /// Enables per-pair collision instrumentation on processes that support
    /// it (via [`ScenarioHooks::set_collision_tracking`]; costs memory
    /// and time).
    pub collisions: bool,
    /// Shard parallelism (see [`ShardSpec`] and [`crate::shard`]). Disabled
    /// by default; when enabled, [`run_scenario`] routes to
    /// [`run_scenario_sharded`]'s phased schedule (Vec backend,
    /// round-robin/random schedulers, crash-stop plans only).
    pub shard: ShardSpec,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        Self {
            scheduler: SchedulerSpec::default(),
            crash_plan: CrashPlan::default(),
            limits: EngineLimits::default(),
            quantum: 1,
            epoch_cache: true,
            reference_single_step: false,
            backend: BackendSpec::default(),
            collisions: false,
            shard: ShardSpec::disabled(),
        }
    }
}

impl ScenarioSpec {
    /// Strictly alternating round-robin, no crashes.
    pub fn round_robin() -> Self {
        Self::default()
    }

    /// Quantized round-robin with [`RoundRobin::BATCH_QUANTUM`] actions per
    /// turn — the macro-stepping fast path.
    pub fn round_robin_batched() -> Self {
        Self::default().with_quantum(RoundRobin::BATCH_QUANTUM)
    }

    /// Seeded random schedule, no crashes.
    pub fn random(seed: u64) -> Self {
        Self {
            scheduler: SchedulerSpec::Random(seed),
            ..Self::default()
        }
    }

    /// Bursty schedule.
    pub fn block(seed: u64, burst: u64) -> Self {
        Self {
            scheduler: SchedulerSpec::Block(seed, burst),
            ..Self::default()
        }
    }

    /// The named adversary from the [`ScenarioHooks::adversary`] registry.
    pub fn adversary(name: &'static str) -> Self {
        Self {
            scheduler: SchedulerSpec::Adversary(name),
            ..Self::default()
        }
    }

    /// Adds a crash plan.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the per-turn quantum (see [`Self::quantum`]).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Replaces the engine step cap.
    pub fn with_limits(mut self, limits: EngineLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Caps the execution at `max_steps` total actions (shorthand for
    /// [`with_limits`](Self::with_limits)).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.limits = EngineLimits::with_max_steps(max_steps);
        self
    }

    /// Enables or disables the announcement-epoch caches (see
    /// [`Self::epoch_cache`]).
    pub fn with_epoch_cache(mut self, enabled: bool) -> Self {
        self.epoch_cache = enabled;
        self
    }

    /// Forces the per-action reference engine path (see
    /// [`Self::reference_single_step`]).
    pub fn single_step(mut self) -> Self {
        self.reference_single_step = true;
        self
    }

    /// Enables collision instrumentation (see [`Self::collisions`]).
    pub fn with_collision_tracking(mut self) -> Self {
        self.collisions = true;
        self
    }

    /// Replaces the shard-parallelism configuration (see [`ShardSpec`]).
    pub fn with_shard_spec(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Enables the phased sharded driver with `shards` partitions on as
    /// many worker threads as the machine affords (shorthand for
    /// [`with_shard_spec`](Self::with_shard_spec) + [`ShardSpec::auto`]).
    /// Every deterministic observable is thread- and shard-count
    /// independent, so this only trades wall-clock.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shard = ShardSpec::auto(shards);
        self
    }

    /// Replaces the register-file backend (see [`BackendSpec`]).
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for the durable backend under the given fault regime.
    pub fn durable(self, fault: StorageFault, seed: u64) -> Self {
        self.with_backend(BackendSpec::durable(fault, seed))
    }

    /// Shorthand for the quorum message-passing backend under the given
    /// network environment.
    pub fn quorum(self, net: NetworkSpec) -> Self {
        self.with_backend(BackendSpec::quorum_with(net))
    }

    /// `true` when the configured scheduler grants quanta, i.e. the engine
    /// will drive processes through `step_many` and an announcement-epoch
    /// cache can actually skip work.
    ///
    /// Honours the per-kind [`quantum`](Self::quantum) semantics: only the
    /// quantum-honouring built-ins (round-robin, random) grant it, blocks
    /// grant their bursts, and adversaries never grant — so a `quantum > 1`
    /// left on an adversary spec does not switch on caches or epoch
    /// tracking that could skip nothing under single-action granularity.
    pub fn grants_quanta(&self) -> bool {
        match self.scheduler {
            SchedulerSpec::RoundRobin | SchedulerSpec::Random(_) => self.quantum > 1,
            SchedulerSpec::Block(..) => true,
            SchedulerSpec::Adversary(_) => false,
        }
    }

    /// The label reported for this spec's scheduler.
    pub fn label(&self) -> &'static str {
        self.scheduler.label()
    }

    /// Lowers this simulated spec into a real-thread
    /// [`ThreadSpec`](crate::thread::ThreadSpec) — the builder-style
    /// threaded entry point.
    ///
    /// What carries over, and what cannot:
    ///
    /// * **crash plan** — carried verbatim (crash-stop budgets; a plan
    ///   with restart entries is rejected by
    ///   [`ThreadSpec::run`](crate::thread::ThreadSpec::run), because real
    ///   threads are crash-stop only);
    /// * **limits** — the engine's *global* step cap becomes the
    ///   *per-thread* wait-freedom watchdog: no global action order exists
    ///   across free-running threads, so a per-process bound is the
    ///   strongest cap the runtime can enforce;
    /// * **scheduler, quantum** — dropped: the machine schedules real
    ///   threads, so the fair built-ins have no threaded meaning. A
    ///   [`SchedulerSpec::Adversary`] spec is rejected (panic) instead of
    ///   silently losing its adversary;
    /// * **epoch cache, collisions, backend** — dropped:
    ///   [`AtomicRegisters`](crate::AtomicRegisters) keeps epochs off by
    ///   design (an epoch probe and a value load are not atomic together
    ///   under real concurrency), instrumentation is simulator-only, and
    ///   the threaded backend *is* the hardware. A non-`Vec`
    ///   [`BackendSpec`] is rejected (panic) — durable journaling and
    ///   quorum messaging exist only in the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the spec requests a named adversary or a non-`Vec`
    /// backend (see above).
    pub fn threaded(&self) -> crate::thread::ThreadSpec {
        assert!(
            !self.scheduler.is_adversary(),
            "adversary {:?} cannot lower to threads: real threads are scheduled by the \
             machine, so an adversarial schedule is inexpressible — run adversary cells \
             in the simulator",
            self.scheduler.label()
        );
        assert!(
            matches!(self.backend, BackendSpec::Vec),
            "backend {:?} cannot lower to threads: durable journaling and quorum \
             messaging are simulator-only backends — threaded runs execute over \
             hardware AtomicRegisters",
            self.backend.label()
        );
        crate::thread::ThreadSpec::new()
            .with_crash_plan(self.crash_plan.clone())
            .with_watchdog(self.limits.max_steps)
    }
}

/// The backend-free registry contract between the generic driver and
/// algorithm crates — what a process type's home crate implements **once**
/// to become a scenario citizen.
///
/// Every method has a correct do-nothing default, so plain processes opt in
/// with an empty `impl` block. Home crates override what applies:
///
/// * [`adversary`](Self::adversary) — the named-adversary factory. A crate
///   that defines an adversary scheduler for its process type resolves the
///   name here (e.g. `amo-core` resolves `"lockstep"`,
///   `"stuck-announcement"` and `"staleness"` for `KkProcess`); names the
///   factory does not recognise mean *unsupported*, and [`run_scenario`]
///   panics if a spec requests one.
/// * [`set_epoch_cache`](Self::set_epoch_cache) — announcement-epoch cache
///   opt-in, called by the driver on every process exactly when
///   [`ScenarioSpec::epoch_cache`] applies (see there).
/// * [`set_collision_tracking`](Self::set_collision_tracking) — per-pair
///   collision instrumentation, driven by [`ScenarioSpec::collisions`].
///
/// Deliberately, the trait carries **no** [`Process<R>`] bounds: hooks are
/// about registries and instrumentation, not about which register file the
/// process steps over. Algorithm automatons are written generically over
/// [`Registers`] (`impl<R: Registers + ?Sized> Process<R> for …`), so a new
/// backend needs **zero** edits in algorithm crates — the home crate's one
/// `ScenarioHooks` impl plus its generic `Process` impl already cover it,
/// and [`ScenarioProcess`] (the driver-facing alias) picks both up through
/// its blanket impl.
pub trait ScenarioHooks {
    /// Builds the named adversary scheduler for this process type, or
    /// `None` when the name is not supported. See the module docs for the
    /// capability rules.
    fn adversary(name: &str) -> Option<Box<dyn Scheduler<Self>>>
    where
        Self: Sized,
    {
        let _ = name;
        None
    }

    /// `true` when [`adversary`](Self::adversary) resolves `name` — the
    /// probe scenario grids use to skip unsupported cells.
    ///
    /// The default delegates to `Self::adversary(name).is_some()`, so a
    /// registry implements **one** method and support stays consistent with
    /// resolution by construction. Capability rule: a process type supports
    /// exactly the names its factory resolves — overriding this probe to
    /// answer differently from the factory is a contract violation
    /// ([`run_scenario`] panics on unresolvable names that probed as
    /// supported).
    fn supports_adversary(name: &str) -> bool
    where
        Self: Sized,
    {
        Self::adversary(name).is_some()
    }

    /// Enables or disables this process's announcement-epoch cache, when it
    /// has one. Default: no cache, no-op.
    fn set_epoch_cache(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Enables or disables per-pair collision instrumentation, when the
    /// process supports it. Default: no instrumentation, no-op.
    fn set_collision_tracking(&mut self, enabled: bool) {
        let _ = enabled;
    }
}

/// A boxed process keeps its hooks: the instance hooks forward to the
/// boxee, so a driver wiring epoch caches or collision instrumentation
/// through a `Box<dyn …>` fleet reaches the real process.
///
/// The *registry* methods ([`adversary`](ScenarioHooks::adversary),
/// [`supports_adversary`](ScenarioHooks::supports_adversary)) are static
/// (`Self: Sized`) and cannot forward through a trait object, so a boxed
/// fleet keeps the defaults: **named adversaries are unresolvable through
/// the erased interface** and a spec requesting one panics exactly like any
/// other unsupported name. Scenario grids that mix dyn fleets with
/// adversary cells must resolve the adversary on the concrete type before
/// boxing.
impl<P: ScenarioHooks + ?Sized> ScenarioHooks for Box<P> {
    fn set_epoch_cache(&mut self, enabled: bool) {
        (**self).set_epoch_cache(enabled)
    }

    fn set_collision_tracking(&mut self, enabled: bool) {
        (**self).set_collision_tracking(enabled)
    }
}

/// A process type that [`run_scenario`] can drive through **any**
/// [`BackendSpec`] — the driver-facing alias over [`ScenarioHooks`] plus
/// steppability on each built-in backend's register file.
///
/// Never implement this directly: the blanket impl below derives it for
/// every type with a `ScenarioHooks` impl and the required `Process` impls,
/// and algorithm crates get those for free from one generic
/// `impl<R: Registers + ?Sized> Process<R>`. Adding a backend extends the
/// bound list *here*, in this one place — algorithm crates never change.
/// (Custom backends outside [`BackendSpec`] don't even need this alias:
/// [`run_scenario_on`] drives any `ScenarioHooks + Process<R>` fleet over
/// any `R: Registers`.)
pub trait ScenarioProcess:
    ScenarioHooks
    + Process<VecRegisters>
    + Process<DurableRegisters>
    + Process<QuorumRegisters>
    + Process<ShardRegisters>
    + Send
{
}

impl<P> ScenarioProcess for P where
    P: ScenarioHooks
        + Process<VecRegisters>
        + Process<DurableRegisters>
        + Process<QuorumRegisters>
        + Process<ShardRegisters>
        + Send
{
}

/// The **object-safe** scenario citizen: what one erased process must be
/// able to do so a `Box<dyn DynProcess>` can go anywhere a concrete process
/// type goes — through [`run_scenario`] on every built-in backend *and*
/// onto real OS threads over [`AtomicRegisters`](crate::AtomicRegisters)
/// (which is how `amo-serve` hosts mixed populations behind one interface).
///
/// This is [`ScenarioProcess`] minus the non-object-safe registry statics,
/// plus `Process<AtomicRegisters>` and `Send` for the thread runtime.
/// Never implement it directly: the blanket impl derives it for every type
/// with a `ScenarioHooks` impl and a generic
/// `impl<R: Registers + ?Sized> Process<R>` — i.e. every algorithm process
/// in the workspace qualifies automatically, so `KkProcess`, iterative and
/// Write-All automatons can share one `Vec<BoxProcess>` fleet.
///
/// What erasure costs (and the equivalence suites pin that it costs
/// *nothing else*): named adversaries cannot resolve through the erased
/// interface (see the [`ScenarioHooks`] impl for `Box<P>`); everything
/// observable — step events, batching, epoch caches, restart support, work
/// accounting — forwards to the boxee bit-identically.
pub trait DynProcess:
    ScenarioHooks
    + Process<VecRegisters>
    + Process<DurableRegisters>
    + Process<QuorumRegisters>
    + Process<ShardRegisters>
    + Process<crate::AtomicRegisters>
    + Send
{
}

impl<P> DynProcess for P where
    P: ScenarioHooks
        + Process<VecRegisters>
        + Process<DurableRegisters>
        + Process<QuorumRegisters>
        + Process<ShardRegisters>
        + Process<crate::AtomicRegisters>
        + Send
{
}

/// An erased scenario process — the fleet element of heterogeneous runs.
pub type BoxProcess = Box<dyn DynProcess>;

/// Boxes a concrete process into the erased fleet type.
///
/// Sugar for `Box::new(p) as BoxProcess`, which keeps heterogeneous fleet
/// literals readable:
///
/// ```
/// use amo_sim::scenario::{boxed, BoxProcess};
/// use amo_sim::testing::{PerformOnceProcess, WriterProcess};
///
/// let fleet: Vec<BoxProcess> = vec![
///     boxed(PerformOnceProcess::new(1, 7)),
///     boxed(WriterProcess::new(2, 0, 3)),
/// ];
/// assert_eq!(fleet.len(), 2);
/// ```
pub fn boxed<P: DynProcess + 'static>(p: P) -> BoxProcess {
    Box::new(p)
}

/// Runs `fleet` over `mem` under the environment described by `spec`,
/// returning the recorded [`Execution`], the final process slots (for
/// terminal-state inspection: IterStep outputs, collision matrices, …) and
/// the register file (for arenas and final-memory certification).
///
/// This is the single driver every simulated runner stack routes through;
/// the per-crate option structs lower into a [`ScenarioSpec`] and call
/// here.
///
/// # Panics
///
/// Panics if the spec requests an adversary this process type does not
/// support (see [`ScenarioHooks::adversary`]), or on the [`Engine`]'s
/// own contract violations (empty or misordered fleet, invalid scheduler
/// decisions).
pub fn run_scenario<P: ScenarioProcess>(
    mem: VecRegisters,
    fleet: Vec<P>,
    spec: &ScenarioSpec,
) -> (Execution, Vec<Slot<P>>, VecRegisters) {
    // Epoch maintenance on the register file is VecRegisters-specific (the
    // wrapping backends delegate it verbatim), so it is configured here,
    // before the one generic code path takes over.
    mem.set_epoch_tracking(spec.epoch_cache && spec.grants_quanta());
    LAST_NET_STATS.with(|s| s.set(None));

    if spec.shard.enabled() {
        // The phased sharded driver (validates its own spec subset: Vec
        // backend, quantum-honouring scheduler, crash-stop plan).
        return run_scenario_sharded(mem, fleet, spec);
    }

    match spec.backend {
        BackendSpec::Durable { fault, seed } => {
            // Wrap *after* epoch wiring: the journal layer delegates every
            // observable verbatim, so the inner file is configured exactly
            // as the volatile backend would be.
            let mem = DurableRegisters::new(mem, fault, seed);
            let (exec, slots, mem) = run_scenario_on(mem, fleet, spec);
            (exec, slots, mem.into_inner())
        }
        BackendSpec::Quorum { net } => {
            let mem = QuorumRegisters::new(mem, net);
            let (exec, slots, mem) = run_scenario_on(mem, fleet, spec);
            LAST_NET_STATS.with(|s| s.set(Some(mem.net_stats())));
            (exec, slots, mem.into_inner())
        }
        // `Vec` and any future variant without a wrapper: drive the bare
        // file. (In-crate, the wildcard keeps `#[non_exhaustive]` honest.)
        _ => run_scenario_on(mem, fleet, spec),
    }
}

/// [`run_scenario`] over an erased, possibly heterogeneous fleet — the dyn
/// entry point of the scenario layer.
///
/// `Box<dyn DynProcess>` satisfies [`ScenarioProcess`] through the
/// forwarding impls, so this is *literally* `run_scenario` at a concrete
/// fleet type: same driver, same engine paths, same backends. The
/// `dyn_equivalence` suite pins that a homogeneous fleet run through here
/// is bit-identical ([`Execution`] `==`) to the same fleet run unboxed.
///
/// # Panics
///
/// As [`run_scenario`] — plus, because adversary registries are static
/// per concrete type, **any** [`SchedulerSpec::Adversary`] spec panics on
/// an erased fleet (see the [`ScenarioHooks`] impl for `Box<P>`).
pub fn run_scenario_dyn(
    mem: VecRegisters,
    fleet: Vec<BoxProcess>,
    spec: &ScenarioSpec,
) -> (Execution, Vec<Slot<BoxProcess>>, VecRegisters) {
    run_scenario(mem, fleet, spec)
}

thread_local! {
    static LAST_NET_STATS: Cell<Option<NetStats>> = const { Cell::new(None) };
}

/// Network/protocol counters of this thread's most recent
/// [`run_scenario`] over a [`BackendSpec::Quorum`] backend; `None` after a
/// run on any other backend.
///
/// A thread-local side channel, not an [`Execution`] field, on purpose: the
/// equivalence obligation requires a lossless quorum `Execution` to compare
/// `==` to its `Vec` twin, so network observability must live outside the
/// report. Per-thread storage keeps grid runners (`par_map`) safe — each
/// worker reads the stats of the cell it just ran.
pub fn last_net_stats() -> Option<NetStats> {
    LAST_NET_STATS.with(|s| s.get())
}

/// The single generic code path behind [`run_scenario`]: drives `fleet`
/// over **any** register file `R` — hook wiring, restart-support checks,
/// scheduler resolution and the engine run.
///
/// [`run_scenario`] lowers every [`BackendSpec`] into a call here (wrapping
/// and unwrapping the register file around it); custom backends outside
/// [`BackendSpec`] call it directly — any `R: Registers` works, and the
/// fleet only needs `ScenarioHooks + Process<R>`, which algorithm crates
/// provide generically. [`ScenarioSpec::backend`] is *not* consulted (the
/// backend is whatever `mem` is), and backend-specific register-file
/// configuration (e.g. [`VecRegisters::set_epoch_tracking`]) is the
/// caller's concern.
///
/// # Panics
///
/// Panics if the spec requests an adversary this process type does not
/// support (see [`ScenarioHooks::adversary`]), if the crash plan restarts a
/// process without restart support, or on the [`Engine`]'s own contract
/// violations (empty or misordered fleet, invalid scheduler decisions).
pub fn run_scenario_on<R, P>(
    mem: R,
    mut fleet: Vec<P>,
    spec: &ScenarioSpec,
) -> (Execution, Vec<Slot<P>>, R)
where
    R: Registers,
    P: ScenarioHooks + Process<R>,
{
    // Epoch caches only pay when the scheduler grants quanta; without them
    // no process consults epochs, so the cache stays off to keep the
    // per-action path lean.
    if spec.epoch_cache && spec.grants_quanta() {
        for p in &mut fleet {
            p.set_epoch_cache(true);
        }
    }
    if spec.collisions {
        for p in &mut fleet {
            p.set_collision_tracking(true);
        }
    }
    if spec.crash_plan.has_restarts() {
        // A restart entry for a process that cannot rebuild itself is a
        // harness bug; fail before running rather than mid-execution.
        for p in &fleet {
            assert!(
                Process::<R>::supports_restart(p),
                "crash plan restarts pid {} but the process does not support restart",
                Process::<R>::pid(p)
            );
        }
    }

    fn go<R: Registers, P: Process<R>, S: Scheduler<P>>(
        mem: R,
        fleet: Vec<P>,
        sched: S,
        spec: &ScenarioSpec,
    ) -> (Execution, Vec<Slot<P>>, R) {
        let sched = WithCrashes::new(sched, spec.crash_plan.clone());
        let mut engine = Engine::new(mem, fleet, sched);
        if spec.reference_single_step {
            engine = engine.single_step();
        }
        engine.run_full(spec.limits)
    }

    match spec.scheduler {
        SchedulerSpec::RoundRobin => go(
            mem,
            fleet,
            RoundRobin::new().with_quantum(spec.quantum.max(1)),
            spec,
        ),
        SchedulerSpec::Random(seed) => go(
            mem,
            fleet,
            RandomScheduler::new(seed).with_quantum(spec.quantum.max(1)),
            spec,
        ),
        SchedulerSpec::Block(seed, burst) => go(mem, fleet, BlockScheduler::new(seed, burst), spec),
        SchedulerSpec::Adversary(name) => {
            let sched = P::adversary(name).unwrap_or_else(|| {
                panic!(
                    "adversary {name:?} is not registered for this process type \
                     (see ScenarioHooks::adversary)"
                )
            });
            go(mem, fleet, sched, spec)
        }
    }
}

// The testing processes are plain scenario citizens: no caches, no
// instrumentation, no adversaries — the defaults.
impl ScenarioHooks for crate::testing::WriterProcess {}
impl ScenarioHooks for crate::testing::PerformOnceProcess {}
impl ScenarioHooks for crate::testing::RacyClaimProcess {}

/// [`run_scenario`] drawing the register file from a [`FleetArena`]: the
/// buffer of the previous simulation is reused warm instead of freshly
/// allocated — the arena's multi-fleet locality win for experiment grids.
pub fn run_scenario_in<P: ScenarioProcess>(
    arena: &mut FleetArena,
    cells: usize,
    fleet: Vec<P>,
    spec: &ScenarioSpec,
) -> (Execution, Vec<Slot<P>>) {
    let mem = arena.lease(cells);
    let (exec, slots, mem) = run_scenario(mem, fleet, spec);
    arena.reclaim(mem);
    (exec, slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::Registers;
    use crate::sched::{Decision, SchedView};
    use crate::testing::WriterProcess;

    fn writers(k: u64) -> (VecRegisters, Vec<WriterProcess>) {
        (
            VecRegisters::new(2),
            vec![WriterProcess::new(1, 0, k), WriterProcess::new(2, 1, k)],
        )
    }

    #[test]
    fn default_spec_is_strict_round_robin() {
        let spec = ScenarioSpec::default();
        assert_eq!(spec.scheduler, SchedulerSpec::RoundRobin);
        assert_eq!(spec.quantum, 1);
        assert!(!spec.grants_quanta());
        assert_eq!(spec.label(), "round-robin");
        let (mem, fleet) = writers(2);
        let (exec, _, _) = run_scenario(mem, fleet, &spec);
        assert!(exec.completed);
        assert_eq!(exec.total_steps, 6, "2 × (2 writes + 1 terminate)");
    }

    #[test]
    fn quantum_applies_to_random_too() {
        // The previously-impossible cell: a quantum-granting random
        // schedule. Identical to its own single-step reference by the
        // engine's batching contract.
        let spec = ScenarioSpec::random(9).with_quantum(5);
        assert!(spec.grants_quanta());
        let (mem, fleet) = writers(20);
        let (fast, _, _) = run_scenario(mem, fleet, &spec);
        let (mem, fleet) = writers(20);
        let (refr, _, _) = run_scenario(mem, fleet, &spec.clone().single_step());
        assert_eq!(fast, refr);
    }

    #[test]
    fn crash_plans_compose_with_every_builtin() {
        for spec in [
            ScenarioSpec::round_robin(),
            ScenarioSpec::round_robin_batched(),
            ScenarioSpec::random(3),
            ScenarioSpec::block(3, 4),
        ] {
            let spec = spec.with_crash_plan(CrashPlan::at_steps([(1usize, 1u64)]));
            let (mem, fleet) = writers(10);
            let (exec, _, _) = run_scenario(mem, fleet, &spec);
            assert_eq!(exec.crashed, vec![1], "{}", spec.label());
            assert!(exec.completed);
        }
    }

    #[test]
    fn epoch_tracking_follows_quanta() {
        let (mem, fleet) = writers(4);
        let (_, _, mem) = run_scenario(mem, fleet, &ScenarioSpec::round_robin());
        assert!(!mem.epochs_enabled(), "no quanta → tracking off");
        let (mem2, fleet) = writers(4);
        let (_, _, mem2) = run_scenario(mem2, fleet, &ScenarioSpec::round_robin_batched());
        assert!(mem2.epochs_enabled(), "quanta → tracking on");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unsupported_adversary_panics() {
        let (mem, fleet) = writers(1);
        let _ = run_scenario(mem, fleet, &ScenarioSpec::adversary("no-such-adversary"));
    }

    #[test]
    fn supports_adversary_probes_without_running() {
        assert!(!WriterProcess::supports_adversary("lockstep"));
    }

    #[test]
    fn arena_variant_matches_fresh_allocation() {
        let mut arena = FleetArena::new();
        let spec = ScenarioSpec::block(1, 3);
        let run_pooled = |arena: &mut FleetArena| {
            let fleet = vec![WriterProcess::new(1, 0, 9), WriterProcess::new(2, 1, 9)];
            run_scenario_in(arena, 2, fleet, &spec).0
        };
        let first = run_pooled(&mut arena);
        let second = run_pooled(&mut arena);
        assert!(arena.reuses() >= 1);
        assert_eq!(first, second, "warm buffers change nothing observable");
    }

    #[test]
    fn fault_free_durable_backend_is_bit_identical_to_vec() {
        for base in [
            ScenarioSpec::round_robin(),
            ScenarioSpec::round_robin_batched(),
            ScenarioSpec::random(5).with_quantum(7),
            ScenarioSpec::block(2, 3),
        ] {
            let base = base.with_crash_plan(CrashPlan::at_steps([(1usize, 3u64)]));
            let (mem, fleet) = writers(12);
            let (vec_exec, _, _) = run_scenario(mem, fleet, &base);
            let (mem, fleet) = writers(12);
            let durable = base.clone().durable(StorageFault::None, 99);
            let (dur_exec, _, mem) = run_scenario(mem, fleet, &durable);
            assert_eq!(vec_exec, dur_exec, "{}", base.label());
            assert_eq!(mem.read(1), 2, "unwrapped file carries final state");
        }
    }

    #[test]
    fn durable_backend_recovers_across_a_restart() {
        // pid 1 crashes mid-run under a dropped-flush regime and restarts;
        // the run still completes with both cells written.
        let mut plan = CrashPlan::at_steps([(1usize, 2u64)]);
        plan.restart_after(1, 3);
        let spec = ScenarioSpec::round_robin()
            .with_crash_plan(plan)
            .durable(StorageFault::DroppedFlush, 17);
        let (mem, fleet) = writers(4);
        let (exec, _, mem) = run_scenario(mem, fleet, &spec);
        assert_eq!(exec.crashed, vec![1]);
        assert_eq!(exec.restarted, vec![1]);
        assert!(exec.completed);
        assert_eq!(mem.read(0), 1);
        assert_eq!(mem.read(1), 2);
    }

    #[test]
    #[should_panic(expected = "does not support restart")]
    fn restart_plan_requires_restart_support() {
        let mut plan = CrashPlan::at_steps([(1usize, 0u64)]);
        plan.restart_after(1, 1);
        let spec = ScenarioSpec::round_robin().with_crash_plan(plan);
        let fleet = vec![
            crate::testing::PerformOnceProcess::new(1, 1),
            crate::testing::PerformOnceProcess::new(2, 2),
        ];
        let _ = run_scenario(VecRegisters::new(0), fleet, &spec);
    }

    #[test]
    fn backend_labels_are_stable() {
        assert_eq!(BackendSpec::Vec.label(), "vec");
        let d = BackendSpec::Durable {
            fault: StorageFault::TornWrite,
            seed: 0,
        };
        assert_eq!(d.label(), "durable");
        assert_eq!(d.fault(), Some(StorageFault::TornWrite));
        assert_eq!(BackendSpec::Vec.fault(), None);
    }

    #[test]
    fn quorum_builders_and_accessors() {
        let q = BackendSpec::quorum(5);
        assert_eq!(q.label(), "quorum");
        assert_eq!(q.fault(), None);
        let net = q.net().expect("quorum carries a network spec");
        assert_eq!(net.replicas, 5);
        assert!(!net.is_lossy());
        assert_eq!(BackendSpec::Vec.net(), None);

        let lossy = NetworkSpec::lossless(3).with_drop(120).with_seed(9);
        assert_eq!(BackendSpec::quorum_with(lossy).net(), Some(lossy));
        assert_eq!(
            ScenarioSpec::round_robin().quorum(lossy).backend.label(),
            "quorum"
        );
    }

    #[test]
    fn quorum_backend_is_bit_identical_to_vec_when_lossless() {
        for base in [
            ScenarioSpec::round_robin(),
            ScenarioSpec::round_robin_batched(),
            ScenarioSpec::random(5).with_quantum(7),
            ScenarioSpec::block(2, 3),
        ] {
            let base = base.with_crash_plan(CrashPlan::at_steps([(1usize, 3u64)]));
            let (mem, fleet) = writers(12);
            let (vec_exec, _, _) = run_scenario(mem, fleet, &base);
            assert!(last_net_stats().is_none(), "vec runs leave no net stats");
            let (mem, fleet) = writers(12);
            let quorum = base.clone().with_backend(BackendSpec::quorum(3));
            let (q_exec, _, mem) = run_scenario(mem, fleet, &quorum);
            assert_eq!(vec_exec, q_exec, "{}", base.label());
            assert_eq!(mem.read(1), 2, "unwrapped file carries final state");
            let stats = last_net_stats().expect("quorum runs publish net stats");
            assert_eq!(stats.atomicity_violations, 0);
            assert_eq!(stats.read_writebacks, 0, "lossless reads take one round");
            assert!(stats.messages_sent > 0);
        }
    }

    #[test]
    fn lossy_quorum_matches_vec_execution_with_zero_violations() {
        // Drops, reordering, latency and replica crashes change the traffic,
        // never the execution: the register file stays authoritative and the
        // protocol result is cross-checked against it.
        let net = NetworkSpec::lossless(5)
            .with_seed(23)
            .with_latency(crate::net::LatencyDist::Uniform { lo: 1, hi: 5 })
            .with_drop(150)
            .with_reorder(200)
            .with_replica_crashes(2);
        let base = ScenarioSpec::round_robin();
        let (mem, fleet) = writers(20);
        let (vec_exec, _, _) = run_scenario(mem, fleet, &base);
        let (mem, fleet) = writers(20);
        let (q_exec, _, _) = run_scenario(mem, fleet, &base.clone().quorum(net));
        assert_eq!(vec_exec, q_exec);
        let stats = last_net_stats().expect("quorum runs publish net stats");
        assert_eq!(stats.atomicity_violations, 0);
        assert!(
            stats.messages_dropped > 0,
            "the lossy cell must actually drop traffic"
        );
    }

    #[test]
    fn threaded_lowering_carries_crashes_and_watchdog() {
        let spec = ScenarioSpec::round_robin_batched()
            .with_crash_plan(CrashPlan::at_steps([(2usize, 5u64)]))
            .with_max_steps(4_000);
        let tspec = spec.threaded();
        assert_eq!(tspec.crash_plan().budget(2), Some(5));
        assert_eq!(tspec.watchdog(), Some(4_000));
        let mem = tspec.alloc(2);
        let procs = vec![WriterProcess::new(1, 0, 40), WriterProcess::new(2, 1, 40)];
        let exec = tspec.run(&mem, procs);
        assert_eq!(exec.crashed, vec![2]);
        assert!(exec.completed);
    }

    #[test]
    #[should_panic(expected = "cannot lower to threads")]
    fn threaded_lowering_rejects_adversaries() {
        let _ = ScenarioSpec::adversary("lockstep").threaded();
    }

    #[test]
    #[should_panic(expected = "cannot lower to threads")]
    fn threaded_lowering_rejects_simulated_backends() {
        let _ = ScenarioSpec::round_robin()
            .durable(StorageFault::None, 1)
            .threaded();
    }

    #[test]
    fn dyn_fleet_runs_and_matches_static() {
        // The headline dyn-equivalence pin at the unit level: a
        // homogeneous boxed fleet is bit-identical to the unboxed run.
        for spec in [
            ScenarioSpec::round_robin(),
            ScenarioSpec::round_robin_batched(),
            ScenarioSpec::random(11).with_quantum(3),
        ] {
            let spec = spec.with_crash_plan(CrashPlan::at_steps([(2usize, 4u64)]));
            let (mem, fleet) = writers(9);
            let (static_exec, _, _) = run_scenario(mem, fleet, &spec);
            let mem = VecRegisters::new(2);
            let fleet: Vec<BoxProcess> = vec![
                boxed(WriterProcess::new(1, 0, 9)),
                boxed(WriterProcess::new(2, 1, 9)),
            ];
            let (dyn_exec, slots, _) = run_scenario_dyn(mem, fleet, &spec);
            assert_eq!(static_exec, dyn_exec, "{}", spec.label());
            assert_eq!(slots.len(), 2);
        }
    }

    #[test]
    fn dyn_fleet_is_heterogeneous() {
        // Two different concrete types in one fleet — inexpressible before
        // the dyn seam.
        let fleet: Vec<BoxProcess> = vec![
            boxed(crate::testing::PerformOnceProcess::new(1, 5)),
            boxed(WriterProcess::new(2, 0, 3)),
        ];
        let (exec, _, _) = run_scenario_dyn(VecRegisters::new(1), fleet, &ScenarioSpec::default());
        assert!(exec.completed);
        assert_eq!(exec.performed.len(), 1);
        assert_eq!(exec.performed[0].span, crate::JobSpan::single(5));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn dyn_fleet_cannot_resolve_named_adversaries() {
        let fleet: Vec<BoxProcess> = vec![boxed(WriterProcess::new(1, 0, 2))];
        let _ = run_scenario_dyn(
            VecRegisters::new(1),
            fleet,
            &ScenarioSpec::adversary("lockstep"),
        );
    }

    #[test]
    fn boxed_scheduler_dispatch_works() {
        // Exercise the Box<dyn Scheduler> path the adversary registry uses.
        struct Rr;
        impl<P> Scheduler<P> for Rr {
            fn decide(&mut self, view: &SchedView<'_, P>) -> Decision {
                Decision::Step(view.running().next().expect("someone runs"))
            }
        }
        let (mem, fleet) = writers(3);
        let sched: Box<dyn Scheduler<WriterProcess>> = Box::new(Rr);
        let exec = Engine::new(mem, fleet, sched).run(EngineLimits::default());
        assert!(exec.completed);
    }
}
