//! Engine/scheduler integration properties: fairness, determinism, crash
//! semantics, and explorer/engine agreement.

use amo_sim::testing::{PerformOnceProcess, RacyClaimProcess, WriterProcess};
use amo_sim::{
    explore, CrashPlan, Decision, Engine, EngineLimits, ExploreConfig, RandomScheduler, RoundRobin,
    ScriptedScheduler, VecRegisters, WithCrashes,
};
use proptest::prelude::*;

#[test]
fn round_robin_is_fair() {
    // With equal workloads, round-robin gives every process the same number
    // of steps (±1 at the end).
    let mem = VecRegisters::new(4);
    let procs: Vec<WriterProcess> = (1..=4).map(|p| WriterProcess::new(p, p - 1, 25)).collect();
    let exec = Engine::new(mem, procs, RoundRobin::new()).run(EngineLimits::default());
    let max = *exec.per_proc_steps.iter().max().unwrap();
    let min = *exec.per_proc_steps.iter().min().unwrap();
    assert!(max - min <= 1, "{:?}", exec.per_proc_steps);
}

#[test]
fn random_scheduler_is_fair_in_the_limit() {
    let mem = VecRegisters::new(3);
    let procs: Vec<WriterProcess> = (1..=3)
        .map(|p| WriterProcess::new(p, p - 1, 2_000))
        .collect();
    let exec = Engine::new(mem, procs, RandomScheduler::new(5)).run(EngineLimits::default());
    assert!(exec.completed, "all terminate despite randomness");
    for &s in &exec.per_proc_steps {
        assert_eq!(s, 2_001);
    }
}

#[test]
fn explorer_min_effectiveness_matches_engine_worst_case() {
    // For the racy claimers the explorer knows the worst and best cases;
    // scripted engine runs can realise both.
    let build = || {
        vec![
            RacyClaimProcess::new(1, 0, 3),
            RacyClaimProcess::new(2, 0, 3),
        ]
    };
    let out = explore(VecRegisters::new(1), build(), ExploreConfig::default());
    // Racy claimers can double-perform, so a violation is found...
    assert!(out.violation.is_some());
    // ...and its trace replays in the engine.
    let trace = out.violation_trace.unwrap();
    let exec = Engine::new(VecRegisters::new(1), build(), ScriptedScheduler::new(trace))
        .run(EngineLimits::default());
    assert!(!exec.violations().is_empty());
}

#[test]
fn crash_plan_with_zero_budget_prevents_all_steps() {
    let mem = VecRegisters::new(2);
    let procs = vec![WriterProcess::new(1, 0, 10), WriterProcess::new(2, 1, 10)];
    let sched = WithCrashes::new(RoundRobin::new(), CrashPlan::first_f_immediately(1));
    let exec = Engine::new(mem, procs, sched).run(EngineLimits::default());
    assert_eq!(exec.per_proc_steps[0], 0);
    assert_eq!(exec.crashed, vec![1]);
    assert_eq!(exec.mem_work.writes, 10, "survivor unaffected");
}

#[test]
fn scripted_decisions_execute_verbatim() {
    let mem = VecRegisters::new(2);
    let procs = vec![WriterProcess::new(1, 0, 3), WriterProcess::new(2, 1, 3)];
    let script = vec![
        Decision::Step(1),
        Decision::Step(1),
        Decision::Crash(0),
        Decision::Step(1),
        Decision::Step(1),
    ];
    let exec = Engine::new(mem, procs, ScriptedScheduler::new(script)).run(EngineLimits::default());
    assert_eq!(exec.crashed, vec![1]);
    assert_eq!(exec.per_proc_steps, vec![0, 4]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mix of writers and performers completes under any seed, and the
    /// step accounting always balances.
    #[test]
    fn engine_accounting_balances(
        writers in 1usize..5,
        k in 1u64..50,
        seed in any::<u64>(),
    ) {
        let mem = VecRegisters::new(writers);
        let procs: Vec<WriterProcess> =
            (1..=writers).map(|p| WriterProcess::new(p, p - 1, k)).collect();
        let exec = Engine::new(mem, procs, RandomScheduler::new(seed))
            .run(EngineLimits::default());
        prop_assert!(exec.completed);
        prop_assert_eq!(exec.per_proc_steps.iter().sum::<u64>(), exec.total_steps);
        prop_assert_eq!(exec.mem_work.writes, writers as u64 * k);
    }

    /// Disjoint performers can never violate, under any schedule or crash
    /// plan (control experiment for the verifier).
    #[test]
    fn disjoint_performers_never_violate(
        m in 1usize..6,
        seed in any::<u64>(),
        f in 0usize..3,
    ) {
        let f = f.min(m - 1);
        let mem = VecRegisters::new(0);
        let procs: Vec<PerformOnceProcess> =
            (1..=m).map(|p| PerformOnceProcess::new(p, p as u64)).collect();
        let sched = WithCrashes::new(
            RandomScheduler::new(seed),
            CrashPlan::random(m, f, 3, seed),
        );
        let exec = Engine::new(mem, procs, sched).run(EngineLimits::default());
        prop_assert!(exec.violations().is_empty());
        prop_assert!(exec.effectiveness() >= (m - f) as u64);
    }
}
