//! Property tests for the message-passing layer: the seeded network model
//! is deterministic per seed, and the quorum register protocol never
//! disagrees with a sequential register oracle — under arbitrary operation
//! sequences and arbitrary loss/reordering/latency/replica-crash regimes
//! (atomicity, checked differentially on every single operation).

use amo_sim::{LatencyDist, NetworkModel, NetworkSpec, QuorumRegisters, Registers, VecRegisters};
use proptest::prelude::*;

const CELLS: usize = 6;

/// Decoded register operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(usize, usize, u64),
    Read(usize),
    Swap(usize, usize, u64),
}

/// Decodes a raw `(kind, pid, cell, value)` tuple into an [`Op`].
fn decode(raw: (u8, u8, u8, u64)) -> Op {
    let (kind, pid, cell, value) = raw;
    let pid = 1 + (pid as usize % 3);
    let cell = cell as usize % CELLS;
    match kind % 4 {
        0 | 1 => Op::Write(pid, cell, value),
        2 => Op::Read(cell),
        _ => Op::Swap(pid, cell, value),
    }
}

fn raw_ops() -> impl Strategy<Value = Vec<(u8, u8, u8, u64)>> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u8..CELLS as u8, any::<u64>()), 1..40)
}

/// An arbitrary (possibly hostile) network environment. Drop is capped
/// below the liveness clamp so the cap itself is also exercised via
/// `with_drop`'s pass-through.
fn net_spec() -> impl Strategy<Value = NetworkSpec> {
    (
        3u8..8,
        any::<u64>(),
        0u16..400,
        0u16..500,
        0u8..4,
        0u8..3,
        0u64..5,
        1u64..7,
    )
        .prop_map(|(replicas, seed, drop, reorder, crashes, dist, lo, span)| {
            let latency = match dist {
                0 => LatencyDist::Zero,
                1 => LatencyDist::Fixed(lo),
                _ => LatencyDist::Uniform { lo, hi: lo + span },
            };
            NetworkSpec::lossless(replicas)
                .with_seed(seed)
                .with_latency(latency)
                .with_drop(drop)
                .with_reorder(reorder)
                .with_replica_crashes(crashes)
        })
}

/// Runs `ops` against a quorum file and an oracle `VecRegisters` in
/// lockstep, asserting every observable matches op-for-op.
fn run_differential(spec: NetworkSpec, ops: &[Op]) -> QuorumRegisters {
    let quorum = QuorumRegisters::new(VecRegisters::new(CELLS), spec);
    let oracle = VecRegisters::new(CELLS);
    for &op in ops {
        match op {
            Op::Write(pid, cell, value) => {
                quorum.note_actor(pid);
                oracle.note_actor(pid);
                quorum.write(cell, value);
                oracle.write(cell, value);
            }
            Op::Read(cell) => {
                assert_eq!(quorum.read(cell), oracle.read(cell));
            }
            Op::Swap(pid, cell, value) => {
                quorum.note_actor(pid);
                oracle.note_actor(pid);
                assert_eq!(quorum.swap(cell, value), oracle.swap(cell, value));
            }
        }
    }
    for cell in 0..CELLS {
        assert_eq!(quorum.read(cell), oracle.read(cell), "final cell {cell}");
    }
    quorum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two network models with identical specs deliver identical flights in
    /// identical order with identical drop decisions, message for message.
    #[test]
    fn network_model_is_deterministic(spec in net_spec(), raw in raw_ops()) {
        let mut a = NetworkModel::<u64>::new(spec);
        let mut b = NetworkModel::<u64>::new(spec);
        for (i, &(_, _, to, payload)) in raw.iter().enumerate() {
            let to = 1 + (to as usize % spec.replicas as usize);
            prop_assert_eq!(a.send(0, to, payload), b.send(0, to, payload), "send {}", i);
            if i % 3 == 0 {
                a.tick();
                b.tick();
            }
        }
        prop_assert_eq!(a.sent(), b.sent());
        prop_assert_eq!(a.dropped(), b.dropped());
        loop {
            let (da, db) = (a.deliver_next(), b.deliver_next());
            match (da, db) {
                (None, None) => break,
                (Some(da), Some(db)) => {
                    prop_assert_eq!(da.at, db.at);
                    prop_assert_eq!(da.from, db.from);
                    prop_assert_eq!(da.to, db.to);
                    prop_assert_eq!(da.msg, db.msg);
                }
                _ => prop_assert!(false, "delivery streams diverged in length"),
            }
        }
        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(a.delivered(), b.delivered());
    }

    /// Deliveries never run backwards in virtual time.
    #[test]
    fn network_model_delivery_times_are_monotone(spec in net_spec(), raw in raw_ops()) {
        let mut net = NetworkModel::<u64>::new(spec);
        for &(_, from, to, payload) in &raw {
            let to = 1 + (to as usize % spec.replicas as usize);
            net.send(from as usize % 2, to, payload);
        }
        let mut last = 0u64;
        while let Some(d) = net.deliver_next() {
            prop_assert!(d.at >= last, "delivery at {} after {}", d.at, last);
            prop_assert!(d.at <= net.now());
            last = d.at;
        }
        prop_assert!(net.in_flight() == 0);
    }

    /// The heart of the backend contract: under *every* sampled network —
    /// drops, reordering, latency, replica crashes — every read and swap
    /// returns exactly what a sequential register file returns, and the
    /// protocol's own cross-check agrees (zero atomicity violations).
    #[test]
    fn quorum_registers_match_the_sequential_oracle(spec in net_spec(), raw in raw_ops()) {
        let ops: Vec<Op> = raw.iter().map(|&r| decode(r)).collect();
        let quorum = run_differential(spec, &ops);
        let stats = quorum.net_stats();
        prop_assert_eq!(stats.atomicity_violations, 0);
        prop_assert!(stats.messages_sent > 0);
    }

    /// The failure detector never spends more explicit probe packets than
    /// its budget, in any regime.
    #[test]
    fn fd_probe_traffic_respects_the_budget(
        spec in net_spec(),
        budget in 0u32..6,
        raw in raw_ops(),
    ) {
        let spec = spec.with_fd_budget(budget);
        let ops: Vec<Op> = raw.iter().map(|&r| decode(r)).collect();
        let quorum = run_differential(spec, &ops);
        prop_assert!(quorum.net_stats().fd_packets <= u64::from(budget));
        prop_assert!(quorum.fd_budget_left() <= budget);
    }

    /// Degenerate-network cleanliness: on a lossless zero-latency network
    /// every read completes in one round and nothing is ever retransmitted,
    /// dropped, or suspected.
    #[test]
    fn lossless_zero_latency_runs_are_clean(replicas in 3u8..8, raw in raw_ops()) {
        let ops: Vec<Op> = raw.iter().map(|&r| decode(r)).collect();
        let quorum = run_differential(NetworkSpec::lossless(replicas), &ops);
        let stats = quorum.net_stats();
        prop_assert_eq!(stats.atomicity_violations, 0);
        prop_assert_eq!(stats.read_writebacks, 0);
        prop_assert_eq!(stats.retransmissions, 0);
        prop_assert_eq!(stats.messages_dropped, 0);
        prop_assert_eq!(stats.suspicions, 0);
        prop_assert!(quorum.suspected().is_empty());
    }
}
