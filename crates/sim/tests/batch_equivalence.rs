//! Engine-level fast-path invariants, independent of any concrete
//! algorithm: quantized scheduling through the default one-step
//! [`Process::step_many`] must leave every observable of an execution
//! unchanged, and the step cap must clamp quanta exactly.

use amo_sim::testing::{PerformOnceProcess, WriterProcess};
use amo_sim::{
    BlockScheduler, CrashPlan, Engine, EngineLimits, Execution, RoundRobin, VecRegisters,
    WithCrashes,
};

fn exec_eq(fast: &Execution, reference: &Execution, what: &str) {
    assert_eq!(
        fast.performed, reference.performed,
        "{what}: performed differ"
    );
    assert_eq!(
        fast.total_steps, reference.total_steps,
        "{what}: total_steps differ"
    );
    assert_eq!(fast.crashed, reference.crashed, "{what}: crashes differ");
    assert_eq!(
        fast.completed, reference.completed,
        "{what}: completion differs"
    );
    assert_eq!(
        fast.mem_work, reference.mem_work,
        "{what}: mem work differs"
    );
    assert_eq!(
        fast.per_proc_steps, reference.per_proc_steps,
        "{what}: per-proc steps differ"
    );
}

fn writers(m: usize, k: u64) -> Vec<WriterProcess> {
    (1..=m).map(|p| WriterProcess::new(p, p - 1, k)).collect()
}

#[test]
fn quantized_round_robin_equals_reference_for_generic_processes() {
    for &q in &[2u64, 5, 64, 1000] {
        let run = |single: bool| {
            let mem = VecRegisters::new(4);
            let mut engine = Engine::new(mem, writers(4, 25), RoundRobin::new().with_quantum(q));
            if single {
                engine = engine.single_step();
            }
            engine.run(EngineLimits::default())
        };
        exec_eq(&run(false), &run(true), &format!("writers rr-quantum={q}"));
    }
}

#[test]
fn block_bursts_equal_reference_for_generic_processes() {
    for &(seed, burst) in &[(0u64, 3u64), (9, 17), (42, 200)] {
        let run = |single: bool| {
            let mem = VecRegisters::new(3);
            let mut engine = Engine::new(mem, writers(3, 40), BlockScheduler::new(seed, burst));
            if single {
                engine = engine.single_step();
            }
            engine.run(EngineLimits::default())
        };
        exec_eq(
            &run(false),
            &run(true),
            &format!("writers block({seed},{burst})"),
        );
    }
}

#[test]
fn step_cap_clamps_quanta_exactly() {
    // With a cap of 10 and a quantum of 64, the batched engine must stop at
    // exactly 10 actions — the quantum is clamped, never overshot.
    let run = |single: bool| {
        let mem = VecRegisters::new(2);
        let mut engine = Engine::new(mem, writers(2, 1000), RoundRobin::new().with_quantum(64));
        if single {
            engine = engine.single_step();
        }
        engine.run(EngineLimits::with_max_steps(10))
    };
    let fast = run(false);
    assert_eq!(fast.total_steps, 10);
    assert!(!fast.completed);
    exec_eq(&fast, &run(true), "step cap");
}

#[test]
fn crash_plans_fire_at_identical_actions_under_quanta() {
    let run = |single: bool| {
        let mem = VecRegisters::new(0);
        let procs: Vec<PerformOnceProcess> = (1..=4)
            .map(|p| PerformOnceProcess::new(p, p as u64))
            .collect();
        let sched = WithCrashes::new(
            RoundRobin::new().with_quantum(8),
            CrashPlan::at_steps([(2usize, 1u64), (4, 0)]),
        );
        let mut engine = Engine::new(mem, procs, sched).with_max_crashes(3);
        if single {
            engine = engine.single_step();
        }
        engine.run(EngineLimits::default())
    };
    let fast = run(false);
    assert_eq!(fast.crashed, vec![4, 2]);
    exec_eq(&fast, &run(true), "crash plan under quanta");
}

#[test]
fn tracing_forces_per_action_granularity() {
    // With tracing on, the engine records one entry per action even when the
    // scheduler grants large quanta.
    let mem = VecRegisters::new(2);
    let exec = Engine::new(mem, writers(2, 5), RoundRobin::new().with_quantum(64))
        .with_trace(1000)
        .run(EngineLimits::default());
    assert_eq!(exec.trace.len() as u64, exec.total_steps);
    for (i, entry) in exec.trace.iter().enumerate() {
        assert_eq!(
            entry.step,
            i as u64 + 1,
            "trace steps are dense and 1-based"
        );
    }
}
