//! Property tests for the phased sharded driver: randomized fleets,
//! quanta, crash plans and shard/thread assignments are **merge-order
//! invariant** — every `(shards, threads)` combination replays the shard
//! publication buffers into the same final [`VecRegisters`] state and the
//! same [`Execution`], and the tracked-prefix epoch footprint
//! (`epoch_mem_bytes`) aggregates identically across shard counts.

use amo_sim::testing::{PerformOnceProcess, WriterProcess};
use amo_sim::{
    run_scenario, BoxProcess, CrashPlan, Execution, ScenarioSpec, ShardSpec, VecRegisters,
};
use proptest::prelude::*;

/// A randomized heterogeneous fleet: writers with arbitrary targets and
/// write counts, interleaved with one-shot performers. Boxed so fleets can
/// mix process types (also exercising `Box<dyn DynProcess>` through the
/// sharded driver).
fn fleet_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..2, 0u8..8, 1u8..12), 1..10)
}

fn build_fleet(raw: &[(u8, u8, u8)], cells: usize) -> Vec<BoxProcess> {
    raw.iter()
        .enumerate()
        .map(|(i, &(kind, cell, k))| -> BoxProcess {
            let pid = i + 1;
            if kind == 0 {
                Box::new(WriterProcess::new(pid, cell as usize % cells, k as u64))
            } else {
                Box::new(PerformOnceProcess::new(pid, 100 + pid as u64))
            }
        })
        .collect()
}

/// Runs one phased configuration and returns the observables the
/// invariance properties compare.
fn run(
    raw: &[(u8, u8, u8)],
    cells: usize,
    spec: &ScenarioSpec,
    shards: usize,
    threads: usize,
) -> (Execution, Vec<u64>, u64) {
    let fleet = build_fleet(raw, cells);
    let spec = spec
        .clone()
        .with_shard_spec(ShardSpec::new(shards, threads));
    let (exec, _, mem) = run_scenario(VecRegisters::new(cells), fleet, &spec);
    let bytes = mem.epoch_mem_bytes();
    (exec, mem.snapshot(), bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every (shards, threads) cell replays to the same Execution and the
    /// same final register-file state as the S=1 sequential reference.
    #[test]
    fn merge_order_invariance(
        raw in fleet_strategy(),
        quantum in 1u64..9,
        random in any::<bool>(),
        seed in any::<u64>(),
        shards in 1usize..9,
        threads in 1usize..5,
    ) {
        let cells = 8;
        let spec = if random {
            ScenarioSpec::random(seed).with_quantum(quantum)
        } else {
            ScenarioSpec::round_robin().with_quantum(quantum)
        };
        let reference = run(&raw, cells, &spec, 1, 1);
        let got = run(&raw, cells, &spec, shards, threads);
        prop_assert_eq!(got, reference);
    }

    /// Crash plans decide at grant time, in pid order within the epoch —
    /// shard partitioning must not move a crash or change its blackout
    /// position in the merge.
    #[test]
    fn crashes_are_shard_invariant(
        raw in fleet_strategy(),
        quantum in 1u64..7,
        crash_seed in any::<u64>(),
        shards in 1usize..9,
        threads in 1usize..4,
    ) {
        let cells = 8;
        let m = raw.len();
        // f < m: at least one survivor.
        let plan = CrashPlan::random(m, m - 1, 64, crash_seed);
        let spec = ScenarioSpec::round_robin().with_quantum(quantum).with_crash_plan(plan);
        let reference = run(&raw, cells, &spec, 1, 1);
        let got = run(&raw, cells, &spec, shards, threads);
        prop_assert_eq!(got, reference);
    }

    /// Write-only fleets never observe the frozen snapshot, so the phased
    /// run must equal the unsharded interleaving engine bit-for-bit —
    /// publication-buffer replay is exactly the engine's write sequence.
    #[test]
    fn replay_matches_engine_for_write_only_fleets(
        targets in proptest::collection::vec((0u8..8, 1u8..12), 1..10),
        quantum in 1u64..9,
        shards in 1usize..9,
    ) {
        let cells = 8;
        let fleet = |targets: &[(u8, u8)]| -> Vec<WriterProcess> {
            targets
                .iter()
                .enumerate()
                .map(|(i, &(cell, k))| WriterProcess::new(i + 1, cell as usize % cells, k as u64))
                .collect()
        };
        let spec = ScenarioSpec::round_robin().with_quantum(quantum);
        let (unsharded, _, mem_u) =
            run_scenario(VecRegisters::new(cells), fleet(&targets), &spec);
        let sharded_spec = spec.clone().with_shard_spec(ShardSpec::sequential(shards));
        let (sharded, _, mem_s) =
            run_scenario(VecRegisters::new(cells), fleet(&targets), &sharded_spec);
        prop_assert_eq!(&sharded, &unsharded);
        prop_assert_eq!(mem_s.snapshot(), mem_u.snapshot());
        prop_assert_eq!(mem_s.epoch_mem_bytes(), mem_u.epoch_mem_bytes());
    }
}
