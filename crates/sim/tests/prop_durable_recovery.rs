//! Property tests for the durable-register recovery layer: recovery is
//! idempotent, blackouts under every fault regime reduce to a prefix cut
//! of the crasher's soft suffix (flushed work is never un-performed), and
//! the fault-free wrapper is observationally identical to the bare
//! volatile file under arbitrary operation sequences.

use amo_sim::{DurableRegisters, Registers, StorageFault, VecRegisters};
use proptest::prelude::*;

const CELLS: usize = 8;

/// Decoded journal-driving operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Actor(usize),
    Write(usize, u64),
    Swap(usize, u64),
    Barrier,
    Blackout(usize),
}

/// Decodes a raw `(kind, pid, cell, value)` tuple into an [`Op`]. Values
/// are kept nonzero so a rolled-back cell (0) is distinguishable.
fn decode(raw: (u8, u8, u8, u64)) -> Op {
    let (kind, pid, cell, value) = raw;
    let pid = 1 + (pid as usize % 3);
    let cell = cell as usize % CELLS;
    let value = value | 1;
    match kind % 8 {
        0 | 1 => Op::Actor(pid),
        2..=4 => Op::Write(cell, value),
        5 => Op::Swap(cell, value),
        6 => Op::Barrier,
        _ => Op::Blackout(pid),
    }
}

fn apply(mem: &dyn Registers, op: Op) {
    match op {
        Op::Actor(pid) => mem.note_actor(pid),
        Op::Write(cell, value) => mem.write(cell, value),
        Op::Swap(cell, value) => {
            mem.swap(cell, value);
        }
        Op::Barrier => mem.perform_barrier(),
        Op::Blackout(pid) => mem.crash_blackout(pid),
    }
}

fn fault_from(pick: u8) -> StorageFault {
    // Only the injecting regimes: index 0 of ALL is `None`.
    StorageFault::ALL[1 + pick as usize % (StorageFault::ALL.len() - 1)]
}

fn raw_ops() -> impl Strategy<Value = Vec<(u8, u8, u8, u64)>> {
    proptest::collection::vec((0u8..8, 0u8..3, 0u8..CELLS as u8, any::<u64>()), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recovery is a pure replay: computing the recovered image twice
    /// yields the same state, the full-prefix replay *is* the recovered
    /// image, and once every buffer is flushed the recovered image equals
    /// the volatile snapshot exactly.
    #[test]
    fn recovery_is_idempotent(raw in raw_ops(), fault_pick in 0u8..4, seed in any::<u64>()) {
        let mem = DurableRegisters::new(VecRegisters::new(CELLS), fault_from(fault_pick), seed);
        for &r in &raw {
            apply(&mem, decode(r));
        }
        prop_assert_eq!(mem.recover_image(), mem.recover_image());
        prop_assert_eq!(mem.replay_prefix(mem.wal_len()), mem.recover_image());
        // Flush every buffer (actor 0 holds any records journaled before
        // the first actor announcement): recovery now loses nothing.
        for pid in 0..=3 {
            mem.note_actor(pid);
            mem.perform_barrier();
        }
        prop_assert_eq!(mem.soft_len(), 0);
        prop_assert_eq!(mem.recover_image(), mem.snapshot());
        // ... and a blackout of any pid changes nothing (second recovery
        // over an already-recovered log is the identity).
        let before = mem.snapshot();
        for pid in 1..=3 {
            mem.crash_blackout(pid);
        }
        prop_assert_eq!(mem.snapshot(), before);
    }

    /// Replay along the WAL prefix order is monotone: each extra record
    /// changes at most one cell, never invents a value that was not
    /// journaled, and replaying any prefix twice is deterministic.
    #[test]
    fn wal_prefix_replay_is_monotone(raw in raw_ops(), seed in any::<u64>()) {
        let mem = DurableRegisters::new(VecRegisters::new(CELLS), StorageFault::TruncatedLog, seed);
        let mut journaled = vec![0u64];
        for &r in &raw {
            let op = decode(r);
            if let Op::Write(_, v) | Op::Swap(_, v) = op {
                journaled.push(v);
            }
            apply(&mem, op);
        }
        let mut prev = mem.replay_prefix(0);
        for k in 0..=mem.wal_len() {
            let image = mem.replay_prefix(k);
            prop_assert_eq!(&image, &mem.replay_prefix(k), "replay is deterministic at {}", k);
            let diff = image.iter().zip(&prev).filter(|(a, b)| a != b).count();
            prop_assert!(diff <= 1, "record {} changed {} cells", k, diff);
            for v in &image {
                prop_assert!(journaled.contains(v), "invented value {}", v);
            }
            prev = image;
        }
    }

    /// Every fault regime is a prefix cut of the crasher's soft suffix:
    /// writes flushed before the blackout survive verbatim, and the
    /// unflushed writes roll back from some point in write order — a
    /// blackout can never un-perform flushed (committed) work, and never
    /// exposes a value that was not written.
    #[test]
    fn blackout_is_a_prefix_cut_of_the_soft_suffix(
        durable_vals in proptest::collection::vec(any::<u64>(), 0..CELLS),
        soft_vals in proptest::collection::vec(any::<u64>(), 1..CELLS + 1),
        fault_pick in 0u8..4,
        seed in any::<u64>(),
    ) {
        let fault = fault_from(fault_pick);
        let mem = DurableRegisters::new(VecRegisters::new(CELLS), fault, seed);
        mem.note_actor(1);
        // Phase 1: flushed writes — the durable floor.
        for (c, v) in durable_vals.iter().enumerate() {
            mem.write(c, v | 1);
        }
        mem.perform_barrier();
        let floor = mem.snapshot();
        // Phase 2: soft writes to distinct cells with distinct values.
        let soft: Vec<(usize, u64)> = soft_vals
            .iter()
            .enumerate()
            .map(|(i, v)| (i, (v << 4) | 2))
            .collect();
        for &(c, v) in &soft {
            mem.write(c, v);
        }
        mem.crash_blackout(1);
        let after = mem.snapshot();
        // The survivors must be exactly writes[..cut] for some cut.
        let cut = soft
            .iter()
            .position(|&(c, v)| after[c] != v)
            .unwrap_or(soft.len());
        for (i, &(c, v)) in soft.iter().enumerate() {
            if i < cut {
                prop_assert_eq!(after[c], v, "{}: surviving prefix intact", fault.label());
            } else {
                prop_assert_eq!(
                    after[c], floor[c],
                    "{}: rolled-back cell {} returns to the durable floor",
                    fault.label(), c
                );
            }
        }
        for c in soft.len()..CELLS {
            prop_assert_eq!(after[c], floor[c], "untouched cell {} unchanged", c);
        }
        prop_assert_eq!(mem.recover_image(), after);
        // Idempotence: a second blackout of the same pid is a no-op (the
        // surviving records became the new durable baseline).
        mem.crash_blackout(1);
        prop_assert_eq!(mem.snapshot(), after);
    }

    /// A blackout only touches the crasher's buffer: another process's
    /// soft records survive every fault regime untouched.
    #[test]
    fn blackout_spares_other_actors_buffers(
        survivor_vals in proptest::collection::vec(any::<u64>(), 1..CELLS / 2 + 1),
        crasher_vals in proptest::collection::vec(any::<u64>(), 0..CELLS / 2),
        fault_pick in 0u8..4,
        seed in any::<u64>(),
    ) {
        let mem = DurableRegisters::new(VecRegisters::new(CELLS), fault_from(fault_pick), seed);
        // pid 2 (the survivor) writes the low cells, pid 1 the high cells:
        // disjoint, so replay cannot mask either's records.
        mem.note_actor(2);
        for (c, v) in survivor_vals.iter().enumerate() {
            mem.write(c, v | 1);
        }
        mem.note_actor(1);
        for (c, v) in crasher_vals.iter().enumerate() {
            mem.write(CELLS / 2 + c, v | 1);
        }
        mem.crash_blackout(1);
        let after = mem.snapshot();
        for (c, v) in survivor_vals.iter().enumerate() {
            prop_assert_eq!(after[c], v | 1, "survivor's soft write {} lost", c);
        }
        prop_assert_eq!(mem.recover_image(), after);
    }

    /// Fault-free differential: the durable wrapper is observationally
    /// identical to a bare [`VecRegisters`] — same reads, same swap
    /// returns, same counters, same epochs — under arbitrary operation
    /// sequences including barriers and blackouts.
    #[test]
    fn fault_free_wrapper_is_observationally_identical(raw in raw_ops()) {
        let plain = VecRegisters::new(CELLS);
        let wrapped = DurableRegisters::new(VecRegisters::new(CELLS), StorageFault::None, 99);
        for &r in &raw {
            let op = decode(r);
            apply(&plain, op);
            apply(&wrapped, op);
            if let Op::Write(cell, _) | Op::Swap(cell, _) = op {
                prop_assert_eq!(plain.read(cell), wrapped.read(cell));
                prop_assert_eq!(plain.epoch(cell), wrapped.epoch(cell));
            }
        }
        prop_assert_eq!(plain.snapshot(), wrapped.snapshot());
        prop_assert_eq!(plain.work(), wrapped.work());
        prop_assert_eq!(plain.global_epoch(), wrapped.global_epoch());
        prop_assert_eq!(wrapped.recover_image(), wrapped.snapshot());
    }
}
