//! Paper-specific adversary strategies.
//!
//! These schedulers inspect the internal state of [`KkProcess`] automatons —
//! which is legitimate: the model's adversary is *omniscient* (§2.1).

use amo_ostree::OrderedJobSet;
use amo_sim::{Decision, LifeState, SchedView, Scheduler};

use crate::kk::KkProcess;

/// The lower-bound adversary from the proof of Theorem 4.4.
///
/// Strategy: for `k = 1, …, m−1` in turn, let only process `k` run until it
/// has *announced* its first candidate (completed `setNext`), then crash it.
/// Each crashed process holds a distinct job hostage in its `next_k`
/// register — the `STUCK_α` set of the proof — because the first candidates
/// are picked by rank-splitting the same full `FREE = J` set. Finally the
/// sole survivor, process `m`, runs alone: its `TRY` set permanently
/// contains the `m − 1` stuck jobs, so it terminates exactly when
/// `|FREE \ TRY| < β`, having performed
///
/// ```text
/// Do(α) = n − (β + m − 2)
/// ```
///
/// jobs — matching Theorem 4.4's effectiveness *exactly* (the bound is
/// tight). Requires `n ≥ 2m − 1` so the first picks are pairwise distinct.
#[derive(Debug, Clone, Default)]
pub struct StuckAnnouncementAdversary {
    /// Next victim (1-based); victims are processes `1..=m−1`.
    victim: usize,
}

impl StuckAnnouncementAdversary {
    /// Creates the adversary.
    pub fn new() -> Self {
        Self { victim: 1 }
    }
}

impl<S: OrderedJobSet> Scheduler<KkProcess<S>> for StuckAnnouncementAdversary {
    fn decide(&mut self, view: &SchedView<'_, KkProcess<S>>) -> Decision {
        let m = view.slots.len();
        while self.victim < m {
            let i = self.victim - 1;
            let slot = &view.slots[i];
            match slot.state {
                LifeState::Running => {
                    return if slot.process.has_announced() {
                        self.victim += 1;
                        Decision::Crash(i)
                    } else {
                        Decision::Step(i)
                    };
                }
                // Already crashed/terminated by some external plan; move on.
                _ => self.victim += 1,
            }
        }
        // All victims dispatched: run the survivor (and anyone left) fairly.
        Decision::Step(view.running().next().expect("survivor still running"))
    }
}

/// Collision-*forcing* adversary for the Lemma 5.5 experiment (E7).
///
/// A `check` failure (Definition 5.2's collision) requires a process to
/// announce a candidate that someone else has already announced or logged.
/// Under benign schedules rank-splitting makes that nearly impossible — the
/// announce/gather handshake is precisely designed to prevent it. This
/// omniscient adversary manufactures the staleness the proofs of §5 reason
/// about:
///
/// 1. **Freeze** the victim (highest pid) the moment `compNext` has chosen
///    its candidate `x` but *before* `setNext` publishes it — the one
///    window where the pick is invisible to everyone else;
/// 2. **run the others** until one of them performs `x` (they cannot see
///    the frozen announcement, so nothing stops them);
/// 3. **wake** the victim: it announces the stale `x`, gathers, and its
///    `check` fails against the `done` log — one collision, attributed per
///    Definition 5.2 — then repeat.
///
/// Collisions still cannot exceed the Lemma 5.5 bound (that is the point of
/// the experiment).
#[derive(Debug, Clone, Default)]
pub struct StalenessAdversary {
    frozen_job: Option<u64>,
    rr: usize,
}

impl StalenessAdversary {
    /// Creates the adversary (victim = highest pid).
    pub fn new() -> Self {
        Self::default()
    }
}

impl<S: OrderedJobSet> Scheduler<KkProcess<S>> for StalenessAdversary {
    fn decide(&mut self, view: &SchedView<'_, KkProcess<S>>) -> Decision {
        let m = view.slots.len();
        let victim = m - 1;
        let victim_running = view.slots[victim].state == LifeState::Running;
        let others: Vec<usize> = (0..m - 1)
            .filter(|&i| view.slots[i].state == LifeState::Running)
            .collect();

        if !victim_running || others.is_empty() {
            // Nothing left to manufacture; drain fairly.
            return Decision::Step(view.running().next().expect("someone runs"));
        }

        let vp = &view.slots[victim].process;
        match self.frozen_job {
            None => {
                // Drive the victim to the freeze window: candidate chosen,
                // not yet announced.
                if vp.phase() == crate::KkPhase::SetNext {
                    self.frozen_job = vp.current_job();
                    // Fall through to run others this step.
                } else {
                    return Decision::Step(victim);
                }
                let i = others[self.rr % others.len()];
                self.rr += 1;
                Decision::Step(i)
            }
            Some(x) => {
                // Has anyone logged x yet (or is everyone else done)?
                let someone_knows = (0..m - 1).any(|i| view.slots[i].process.has_done(x));
                if someone_knows {
                    self.frozen_job = None;
                    Decision::Step(victim)
                } else {
                    let i = others[self.rr % others.len()];
                    self.rr += 1;
                    Decision::Step(i)
                }
            }
        }
    }
}

/// Resolves the *process-agnostic* adversaries of the scenario registry —
/// currently just `"lockstep"` — for any process type. The one shared
/// definition every crate's [`ScenarioProcess`](amo_sim::ScenarioProcess)
/// implementation delegates to, so registry names are spelled in exactly
/// one place; process-specific factories (e.g. `KkProcess`'s) match their
/// own names first and fall back here.
pub fn generic_adversary<P>(name: &str) -> Option<Box<dyn Scheduler<P>>> {
    match name {
        "lockstep" => Some(Box::new(LockstepScheduler::new())),
        _ => None,
    }
}

/// Collision-maximising schedule: always step the running process with the
/// fewest actions so far (ties to the lowest pid).
///
/// Keeping processes in lockstep maximises the window in which several
/// processes hold announcements simultaneously, which is what drives the
/// `check` failures counted by Lemma 5.5 (experiment E7).
#[derive(Debug, Clone, Default)]
pub struct LockstepScheduler;

impl LockstepScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl<P> Scheduler<P> for LockstepScheduler {
    fn decide(&mut self, view: &SchedView<'_, P>) -> Decision {
        let i = view
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == LifeState::Running)
            .min_by_key(|(i, s)| (s.steps, *i))
            .map(|(i, _)| i)
            .expect("decide called with a running process");
        Decision::Step(i)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::KkConfig;
    use crate::runner::{kk_fleet, run_simulated, SchedulerKind, SimOptions};

    #[test]
    fn stuck_adversary_hits_theorem_4_4_exactly() {
        for (n, m) in [(50usize, 3usize), (100, 5), (64, 2), (200, 8)] {
            let config = KkConfig::new(n, m).unwrap();
            let report = run_simulated(&config, SimOptions::stuck_announcement());
            assert!(report.violations.is_empty());
            assert_eq!(
                report.effectiveness,
                config.effectiveness_bound(),
                "n={n} m={m}: adversary must achieve the bound exactly"
            );
            assert_eq!(report.crashed.len(), m - 1);
        }
    }

    #[test]
    fn stuck_adversary_with_beta_3m2() {
        let n = 400;
        let m = 4;
        let config = KkConfig::with_beta(n, m, KkConfig::work_optimal_beta(m)).unwrap();
        let report = run_simulated(&config, SimOptions::stuck_announcement());
        assert_eq!(report.effectiveness, config.effectiveness_bound());
    }

    #[test]
    fn stuck_adversary_single_process_degenerates_gracefully() {
        let config = KkConfig::new(10, 1).unwrap();
        let report = run_simulated(&config, SimOptions::stuck_announcement());
        assert_eq!(report.effectiveness, 10);
        assert!(report.crashed.is_empty());
    }

    #[test]
    fn staleness_adversary_forces_collisions_safely() {
        let m = 4;
        let config = KkConfig::with_beta(512, m, KkConfig::work_optimal_beta(m)).unwrap();
        let report = run_simulated(&config, SimOptions::staleness().with_collision_tracking());
        assert!(
            report.violations.is_empty(),
            "collisions are not violations"
        );
        assert!(report.completed);
        let matrix = report.collisions.expect("tracking on");
        assert!(matrix.total() > 0, "the adversary must force a collision");
        assert!(matrix.exceeding_lemma_bound().is_empty(), "Lemma 5.5 holds");
        assert!(report.effectiveness >= config.effectiveness_bound());
    }

    #[test]
    fn staleness_adversary_single_process_degenerates() {
        let config = KkConfig::new(8, 1).unwrap();
        let report = run_simulated(&config, SimOptions::staleness());
        assert_eq!(report.effectiveness, 8);
    }

    #[test]
    fn lockstep_schedules_min_steps_first() {
        let config = KkConfig::new(40, 4).unwrap();
        let report = run_simulated(&config, SimOptions::lockstep());
        assert!(report.violations.is_empty());
        assert!(report.completed);
    }

    #[test]
    fn fleet_helper_builds_m_processes() {
        let config = KkConfig::new(12, 3).unwrap();
        let (layout, fleet) = kk_fleet(&config, false);
        assert_eq!(fleet.len(), 3);
        assert_eq!(layout.cells(), 3 + 36);
    }

    #[test]
    fn random_schedules_never_beat_the_upper_bound() {
        // Sanity for Theorem 2.1: Do(α) ≤ n under zero crashes.
        let config = KkConfig::new(30, 3).unwrap();
        for seed in 0..5 {
            let report = run_simulated(&config, SimOptions::random(seed));
            assert!(report.effectiveness <= 30);
            assert_eq!(
                report.scheduler_label, "random",
                "options carry the scheduler label"
            );
        }
    }

    #[test]
    fn scheduler_kind_default_is_round_robin() {
        assert!(matches!(
            SchedulerKind::default(),
            SchedulerKind::RoundRobin
        ));
    }
}
