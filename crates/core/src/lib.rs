//! The **KKβ** algorithm — the primary contribution of
//! *"Solving the At-Most-Once Problem with Nearly Optimal Effectiveness"*
//! (Kentros & Kiayias).
//!
//! # The problem
//!
//! `m` asynchronous, crash-prone processes must perform `n ≥ m` jobs,
//! communicating only through atomic read/write registers, such that **no
//! job is ever performed twice** (Definition 2.2). *Effectiveness* counts
//! the jobs performed in the worst case (Definition 2.4); no algorithm can
//! exceed `n − f` where `f` is the number of crashes (Theorem 2.1).
//!
//! # The algorithm
//!
//! KKβ (paper Fig. 1–2) is wait-free and deterministic. Each process
//!
//! 1. picks a candidate job by *rank-splitting* the currently free jobs into
//!    `m` intervals and taking the first job of its own interval
//!    (`compNext`),
//! 2. announces it in its single-writer `next` register (`setNext`),
//! 3. collects every other process's announcement (`gatherTry`) and
//!    completed-job log (`gatherDone`),
//! 4. performs the job only if nobody else announced or completed it
//!    (`check` → `do`), then logs it (`done`) and repeats.
//!
//! A process terminates when fewer than `β` candidate jobs remain. The
//! results reproduced by this crate's test-and-bench suite:
//!
//! * **Safety** (Lemma 4.1): at-most-once in every execution.
//! * **Effectiveness** (Theorem 4.4): exactly `n − (β + m − 2)` in the worst
//!   case, for any `β ≥ m` — optimal up to an additive `m` for `β = m`.
//! * **Work** (Theorem 5.6): `O(n·m·log n·log m)` for `β ≥ 3m²`.
//!
//! # Examples
//!
//! ```
//! use amo_core::{run_simulated, KkConfig, SimOptions};
//!
//! let config = KkConfig::new(100, 4)?; // n = 100 jobs, m = 4 processes, β = m
//! let report = run_simulated(&config, SimOptions::random(42));
//! assert!(report.violations.is_empty());
//! assert!(report.effectiveness >= config.effectiveness_bound());
//! # Ok::<(), amo_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
pub mod arena;
mod config;
mod kk;
mod layout;
mod runner;
mod stats;

pub use adversary::{
    generic_adversary, LockstepScheduler, StalenessAdversary, StuckAnnouncementAdversary,
};
pub use arena::FleetArena;
pub use config::{ConfigError, KkConfig};
pub use kk::{KkMode, KkPhase, KkProcess, PickRule, SpanMap};
pub use layout::KkLayout;
pub use runner::{
    kk_fleet, kk_fleet_with, run_fleet_simulated, run_scenario_simulated,
    run_scenario_simulated_in, run_simulated, run_simulated_in, run_threads, AmoReport,
    SchedulerKind, SimOptions, ThreadRunOptions,
};
pub use stats::CollisionMatrix;
