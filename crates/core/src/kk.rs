use std::collections::HashMap;

use std::hash::{Hash, Hasher};

use amo_ostree::{rank_excluding_members_hinted, FenwickSet, OrderedJobSet, SelectHint};
use amo_sim::{BatchOutcome, JobSpan, Process, Registers, StepEvent};

use crate::config::KkConfig;
use crate::layout::KkLayout;

/// Which variant of the automaton runs (§3 vs §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KkMode {
    /// Plain KKβ (Fig. 1–2): terminate silently when `|FREE \ TRY| < β`.
    Plain,
    /// `IterStepKK` (§6): a shared termination flag is set by the first
    /// process that runs out of candidates, every process re-checks the flag
    /// before each `do`, and a terminating process performs a final gather
    /// and emits an *output set* for the next iteration stage.
    IterStep {
        /// `true` → output `FREE` (the Write-All variant `WA_IterStepKK`,
        /// §7); `false` → output `FREE \ TRY` (§6).
        output_free: bool,
    },
}

/// How a universe identifier translates into performed jobs.
///
/// Plain KKβ performs job `i` for identifier `i`; the iterated algorithms
/// run KKβ over *super-jobs* — blocks of consecutive jobs — so identifier
/// `k` performs the whole block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanMap {
    /// Identifier `i` is job `i`.
    Identity,
    /// Identifier `k` is the block `[(k−1)·size + 1, min(k·size, total_jobs)]`.
    Blocks {
        /// Jobs per block.
        size: u64,
        /// Total jobs `n` (the last block may be partial).
        total_jobs: u64,
    },
}

impl SpanMap {
    /// The jobs performed by a `do` on identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero or maps outside `1..=total_jobs`.
    pub fn span(&self, id: u64) -> JobSpan {
        match *self {
            SpanMap::Identity => JobSpan::single(id),
            SpanMap::Blocks { size, total_jobs } => {
                let lo = (id - 1) * size + 1;
                let hi = (id * size).min(total_jobs);
                JobSpan::new(lo, hi)
            }
        }
    }
}

/// How `compNext` chooses the candidate's rank inside `FREE \ TRY`
/// (ablation A4, DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PickRule {
    /// The paper's deterministic rank-splitting (Fig. 2).
    RankSplit,
    /// Uniformly random rank, from an embedded xorshift64 state —
    /// the randomized ablation isolating the value of rank-splitting.
    /// Safety is unaffected (the `check` logic is unchanged); collision
    /// behaviour and work change.
    Uniform {
        /// Current xorshift64 state (must be non-zero).
        state: u64,
    },
}

impl PickRule {
    /// A uniform rule seeded per process.
    pub fn uniform(seed: u64) -> Self {
        PickRule::Uniform { state: seed | 1 }
    }

    /// Draws the 1-based rank to pick among `avail` candidates; advances
    /// the internal state for `Uniform`.
    fn pick(&mut self, pid: u64, m: u64, f_len: u64, avail: u64) -> u64 {
        match self {
            PickRule::RankSplit => {
                // TMP ← (|FREE| − (m−1)) / m; if TMP ≥ 1 use the rank-split
                // index ⌊(p−1)·TMP⌋ + 1, else fall back to rank p.
                let num = f_len.saturating_sub(m - 1);
                if num >= m {
                    (pid - 1) * num / m + 1
                } else {
                    pid
                }
            }
            PickRule::Uniform { state } => {
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                x % avail + 1
            }
        }
    }
}

/// The `STATUS` component of the automaton state (Fig. 1), plus the §6
/// extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KkPhase {
    /// `comp_next`: choose the next candidate by rank-splitting.
    CompNext,
    /// `set_next`: announce the candidate in `next_p`.
    SetNext,
    /// `gather_try`: read the other processes' announcements.
    GatherTry,
    /// `gather_done`: read the other processes' completion logs.
    GatherDone,
    /// `check`: is the candidate safe to perform?
    Check,
    /// IterStep only: read the shared termination flag before `do`.
    FlagRead,
    /// `do`: perform the candidate.
    Do,
    /// `done`: log the completed candidate in `done_{p,POS(p)}`.
    DoneWrite,
    /// IterStep only: raise the shared termination flag.
    SetFlag,
    /// IterStep only: terminal re-read of the announcements.
    FinalGatherTry,
    /// IterStep only: terminal re-read of the completion logs.
    FinalGatherDone,
    /// IterStep only: compute the output set and terminate.
    Output,
    /// `end`: terminated.
    End,
}

/// The KKβ I/O automaton of one process — a field-for-field transcription of
/// paper Fig. 1 (state) and Fig. 2 (transitions).
///
/// Deviation D4 (DESIGN.md): `gatherDone` checks `POS(q) ≤ n` *before*
/// reading `done_{q,POS(q)}` instead of after, because reading out of bounds
/// is not expressible in safe Rust; the read value is ignored in that case
/// either way, so the behaviour is identical.
///
/// # Examples
///
/// Stepping a single process by hand in the simulator:
///
/// ```
/// use amo_core::{KkConfig, KkLayout, KkPhase, KkProcess};
/// use amo_sim::{Process, VecRegisters};
///
/// let config = KkConfig::new(4, 1)?;
/// let layout = KkLayout::contiguous(1, 4, false);
/// let mem = VecRegisters::new(layout.cells());
/// let mut p: KkProcess = KkProcess::from_config(1, &config, layout);
/// assert_eq!(p.phase(), KkPhase::CompNext);
/// while !p.is_terminated() {
///     p.step(&mem);
/// }
/// // A lone process with β = m = 1 performs all n jobs.
/// assert_eq!(p.performs(), 4);
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KkProcess<S: OrderedJobSet = FenwickSet> {
    pid: usize,
    m: usize,
    beta: u64,
    layout: KkLayout,
    mode: KkMode,
    span_map: SpanMap,

    pick_rule: PickRule,
    phase: KkPhase,
    free: S,
    done_set: S,
    /// `TRY`, kept sorted; `|TRY| ≤ m − 1` by construction.
    try_set: Vec<u64>,
    /// `POS(q)` for `q ∈ 1..=m` at index `q − 1`; 1-based log positions.
    pos: Vec<u64>,
    /// `NEXT` (0 = undefined, matching the paper's init).
    next_job: u64,
    /// `Q` loop index, `1..=m`.
    q: usize,
    /// Output set of the IterStep variant, available after termination.
    output: Option<S>,

    // ---- announcement-epoch cache (opt-in; see `with_epoch_cache`) ----
    /// `true` when the cache is enabled. The cache is observationally
    /// invisible: every gather action still counts one shared read and one
    /// merge operation exactly like the cache-free automaton, only redundant
    /// loads and redundant `TRY` rebuilds are skipped (the register file's
    /// epoch contract proves the skipped values unchanged).
    epoch_cache: bool,
    /// Last observed value of `next_q` at index `q − 1` (`0` matches the
    /// cells' init value, so the initial cache is valid on fresh memory).
    gt_vals: Vec<u64>,
    /// Epoch of `next_q` when `gt_vals[q − 1]` was recorded.
    gt_epochs: Vec<u64>,
    /// `true` when `gt_vals` changed since `try_set` was last rebuilt.
    gt_dirty: bool,
    /// Others' share of the global epoch (global − own writes) during the
    /// last completed `gatherTry` sweep, provided the sweep ran *atomically
    /// with respect to other writers* (the stamp at the sweep's first action
    /// equalled the stamp at its last — see [`Self::finish_try_sweep`]);
    /// `None` before the first sweep or when foreign writes interleaved.
    gt_stamp: Option<u64>,
    /// Same, for `gatherDone` sweeps: when it still matches, every log
    /// frontier this process watches was read as `0` within one
    /// foreign-write-free window and nothing has been written since, so a
    /// whole sweep is `m` actions and `m − 1`-ish reads of provably-zero
    /// cells.
    gd_stamp: Option<u64>,
    /// Others' epoch at the first action of the in-progress `gatherTry`
    /// sweep (a sweep may span scheduler turns; the stamp is only published
    /// if no foreign write lands between first and last action).
    gt_sweep_start: Option<u64>,
    /// Same, for the in-progress `gatherDone` sweep.
    gd_sweep_start: Option<u64>,
    /// `#{q ≠ pid : gt_vals[q−1] > 0}` — the merge-accounting charge of a
    /// skipped `gatherTry` sweep, maintained so the whole-sweep skip is O(1).
    gt_nonzero: usize,
    /// `#{q ≠ pid : POS(q) ≤ n}` — the read count of a skipped `gatherDone`
    /// sweep, maintained so the whole-sweep skip is O(1).
    gd_open: usize,
    /// Epoch of `done_{q,POS(q)}` when it was last read as `0`;
    /// `u64::MAX` = no valid recording for the current frontier.
    gd_epochs: Vec<u64>,
    /// Shared writes performed by this process (subtracted from the global
    /// epoch so the process's own announcements/log appends never invalidate
    /// its view of *other* processes' cells).
    my_writes: u64,

    // ---- instrumentation (excluded from Eq/Hash) ----
    track_collisions: bool,
    /// Source pid aligned with `try_set` (collision attribution).
    try_src: Vec<usize>,
    /// Source pid per entry of `done_set` (collision attribution).
    done_src: HashMap<u64, usize>,
    /// Collisions detected against each other process, index `q − 1`.
    collisions_with: Vec<u64>,
    /// Reusable buffer for `compNext`'s `TRY ∩ FREE` (avoids a per-cycle
    /// allocation; transient, excluded from Eq/Hash like the counters).
    rank_scratch: Vec<u64>,
    /// `true` while `rank_scratch` still equals `TRY ∩ FREE`: `TRY` has not
    /// changed and no *other* process's job has been merged into `DONE`
    /// since it was built (own performs are provably outside `TRY`).
    /// Pure memoisation — excluded from Eq/Hash.
    scratch_valid: bool,
    /// Position hint for the next `compNext` selection: the previous pick
    /// anchors the rank walk (`SelectHint` invariant: `rank` is the pick's
    /// exact `count_le` in `FREE`). Every `FREE` removal — own performs and
    /// foreign `DONE` merges alike — identifies the removed element, so the
    /// anchor rank is repaired in `O(1)` (`rank -= 1` when the element is
    /// at or below the anchor) and the hint survives whole gather sweeps;
    /// it is only rebuilt by the next pick's re-anchor. The hinted and
    /// unhinted walks return identical elements, so this is pure
    /// memoisation — excluded from Eq/Hash.
    sel_hint: Option<SelectHint>,
    local_ops: u64,
    performs: u64,
}

impl<S: OrderedJobSet> KkProcess<S> {
    /// A plain-mode process for a whole [`KkConfig`] instance
    /// (`FREE = J = 1..=n`).
    ///
    /// The backing order-statistics structure defaults to [`FenwickSet`];
    /// pass an explicit type parameter (e.g.
    /// [`DenseFenwickSet`](amo_ostree::DenseFenwickSet)) for the
    /// data-structure ablation or the perf baseline.
    ///
    /// # Panics
    ///
    /// Panics if `pid ∉ 1..=m` or the layout does not match the config.
    pub fn from_config(pid: usize, config: &KkConfig, layout: KkLayout) -> Self {
        Self::new(
            pid,
            config.m(),
            config.beta(),
            layout,
            S::full(config.n()),
            KkMode::Plain,
            SpanMap::Identity,
        )
    }

    /// Fully general constructor, used by the iterated algorithms: an
    /// arbitrary initial `FREE ⊆ 1..=layout.n()`, a mode, and a span map.
    ///
    /// # Panics
    ///
    /// Panics if `pid ∉ 1..=m`, the layout's `m`/`n` disagree with the
    /// arguments, `β < m`, or IterStep mode is requested without a flag cell.
    pub fn new(
        pid: usize,
        m: usize,
        beta: u64,
        layout: KkLayout,
        free: S,
        mode: KkMode,
        span_map: SpanMap,
    ) -> Self {
        assert!((1..=m).contains(&pid), "pid {pid} out of 1..={m}");
        assert_eq!(layout.m(), m, "layout process count mismatch");
        assert_eq!(layout.n(), free.universe(), "layout universe mismatch");
        assert!(
            beta >= m as u64,
            "beta {beta} < m {m}: termination not guaranteed"
        );
        if matches!(mode, KkMode::IterStep { .. }) {
            assert!(
                layout.flag_cell().is_some(),
                "IterStep mode requires a flag cell"
            );
        }
        let n = layout.n();
        Self {
            pid,
            m,
            beta,
            layout,
            mode,
            span_map,
            pick_rule: PickRule::RankSplit,
            phase: KkPhase::CompNext,
            free,
            done_set: S::empty(n),
            try_set: Vec::with_capacity(m),
            pos: vec![1; m],
            next_job: 0,
            q: 1,
            output: None,
            epoch_cache: false,
            gt_vals: vec![0; m],
            gt_epochs: vec![0; m],
            gt_dirty: false,
            gt_stamp: None,
            gd_stamp: None,
            gt_sweep_start: None,
            gd_sweep_start: None,
            gt_nonzero: 0,
            gd_open: if n >= 1 { m - 1 } else { 0 },
            gd_epochs: vec![u64::MAX; m],
            my_writes: 0,
            track_collisions: false,
            try_src: Vec::new(),
            done_src: HashMap::new(),
            collisions_with: vec![0; m],
            rank_scratch: Vec::with_capacity(m),
            scratch_valid: false,
            sel_hint: None,
            local_ops: 0,
            performs: 0,
        }
    }

    /// Enables per-pair collision counting (experiment E7 / Lemma 5.5).
    pub fn with_collision_tracking(mut self) -> Self {
        self.track_collisions = true;
        self
    }

    /// Enables or disables per-pair collision counting (setter form of
    /// [`with_collision_tracking`](Self::with_collision_tracking), used by
    /// the scenario driver's instrumentation hook).
    pub fn set_collision_tracking(&mut self, enabled: bool) {
        self.track_collisions = enabled;
    }

    /// Replaces the candidate-selection rule (ablation A4).
    pub fn with_pick_rule(mut self, rule: PickRule) -> Self {
        self.pick_rule = rule;
        self
    }

    /// Enables or disables the announcement-epoch cache (builder form of
    /// [`set_epoch_cache`](Self::set_epoch_cache)).
    pub fn with_epoch_cache(mut self, enabled: bool) -> Self {
        self.set_epoch_cache(enabled);
        self
    }

    /// Enables or disables the announcement-epoch cache.
    ///
    /// With the cache on, the `gatherTry`/`gatherDone` loops consult the
    /// register file's per-cell epochs ([`Registers::epoch`]) and skip
    /// re-loading and re-merging announcements whose epoch is unchanged
    /// since this process last read them; `TRY` is rebuilt incrementally at
    /// the end of a sweep (and only when some announcement actually changed)
    /// instead of from scratch every cycle. On register files without epoch
    /// support ([`Registers::epochs_enabled`] is `false`) every probe
    /// misses, which degrades to the cache-free behaviour.
    ///
    /// The cache is **observationally invisible**: shared-read counts, local
    /// operation counts, `do` actions and step indices are identical to the
    /// cache-free automaton (the `batch_equivalence` suites assert
    /// executions equal field-for-field across cache on/off and batched/
    /// single-step). On the engine's single-step (and therefore traced)
    /// path the process still performs full re-reads, reporting a provably
    /// redundant one as [`StepEvent::CachedRead`] so traces keep attributing
    /// the access to its cell.
    pub fn set_epoch_cache(&mut self, enabled: bool) {
        self.epoch_cache = enabled;
    }

    /// `true` when the announcement-epoch cache is enabled.
    pub fn epoch_cache_enabled(&self) -> bool {
        self.epoch_cache
    }

    /// The gather-loop cursor `Q` (used by wrappers to bound how many
    /// actions remain before the next possible `do`; see
    /// `WaIterativeProcess::step_many` in `amo-write-all`).
    pub fn gather_cursor(&self) -> usize {
        self.q
    }

    /// Current automaton phase.
    pub fn phase(&self) -> KkPhase {
        self.phase
    }

    /// `true` once the automaton reached `end` (inherent twin of the
    /// [`Process`] trait method, callable without naming a register type).
    pub fn is_terminated(&self) -> bool {
        self.phase == KkPhase::End
    }

    /// Local basic operations executed so far (inherent twin of the
    /// [`Process`] trait method).
    pub fn local_work(&self) -> u64 {
        self.local_ops + self.free.ops() + self.done_set.ops()
    }

    /// The announced candidate (`NEXT`), if one has been computed.
    pub fn current_job(&self) -> Option<u64> {
        (self.next_job != 0).then_some(self.next_job)
    }

    /// `true` once the process has written its current candidate to
    /// `next_p` (i.e. it is at or past `gather_try` in this cycle).
    pub fn has_announced(&self) -> bool {
        matches!(
            self.phase,
            KkPhase::GatherTry | KkPhase::GatherDone | KkPhase::Check | KkPhase::FlagRead
        )
    }

    /// Number of `do` actions executed.
    pub fn performs(&self) -> u64 {
        self.performs
    }

    /// Size of the current `FREE` estimate.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Size of the current `DONE` estimate.
    pub fn done_len(&self) -> usize {
        self.done_set.len()
    }

    /// `true` if this process already knows `job` to be performed (it is in
    /// its `DONE` estimate). Used by the omniscient adversaries of §5.
    pub fn has_done(&self, job: u64) -> bool {
        self.done_set.contains(job)
    }

    /// Collisions detected against each other process (index `q − 1`);
    /// meaningful only with collision tracking enabled.
    pub fn collisions_with(&self) -> &[u64] {
        &self.collisions_with
    }

    /// The IterStep output set (`FREE \ TRY`, or `FREE` in the WA variant);
    /// `Some` only after termination in IterStep mode.
    pub fn output(&self) -> Option<&S> {
        self.output.as_ref()
    }

    /// Consumes the process and returns the IterStep output set.
    pub fn into_output(self) -> Option<S> {
        self.output
    }

    /// Checks the state invariants the paper's analysis relies on.
    ///
    /// * `FREE ∩ DONE = ∅` — a job leaves `FREE` exactly when it enters
    ///   `DONE` (§3's set maintenance);
    /// * `|TRY| ≤ m − 1`, sorted, within the universe — one announcement
    ///   slot per other process;
    /// * `Q ∈ 1..=m`, `POS(q) ∈ 1..=n+1` — loop and log cursors in range;
    /// * `NEXT` is defined in every phase that uses it.
    ///
    /// Intended for tests and the exhaustive explorer (it walks `TRY`
    /// and is `O(|TRY|·log n)`); production steps do not call it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.layout.n() as u64;
        for t in &self.try_set {
            if self.done_set.contains(*t) && self.free.contains(*t) {
                return Err(format!("job {t} in both FREE and DONE"));
            }
        }
        // FREE ∩ DONE emptiness via sizes: every done job was removed from
        // free by done_insert, so |FREE| + |DONE| ≤ n always.
        if self.free.len() + self.done_set.len() > self.layout.n() {
            return Err(format!(
                "|FREE| + |DONE| = {} + {} exceeds n = {}",
                self.free.len(),
                self.done_set.len(),
                self.layout.n()
            ));
        }
        if self.try_set.len() > self.m.saturating_sub(1) {
            return Err(format!("|TRY| = {} > m − 1", self.try_set.len()));
        }
        if self.try_set.windows(2).any(|w| w[0] >= w[1]) {
            return Err("TRY not strictly sorted".to_owned());
        }
        if self.try_set.iter().any(|&v| v == 0 || v > n) {
            return Err("TRY holds an out-of-universe id".to_owned());
        }
        if !(1..=self.m).contains(&self.q) {
            return Err(format!("Q = {} out of 1..={}", self.q, self.m));
        }
        for (i, &pos) in self.pos.iter().enumerate() {
            if pos == 0 || pos > n + 1 {
                return Err(format!("POS({}) = {pos} out of 1..={}", i + 1, n + 1));
            }
        }
        let needs_next = matches!(
            self.phase,
            KkPhase::SetNext
                | KkPhase::GatherTry
                | KkPhase::GatherDone
                | KkPhase::Check
                | KkPhase::FlagRead
                | KkPhase::Do
                | KkPhase::DoneWrite
        );
        if needs_next && (self.next_job == 0 || self.next_job > n) {
            return Err(format!(
                "NEXT = {} undefined in phase {:?}",
                self.next_job, self.phase
            ));
        }
        if self.output.is_some() && self.phase != KkPhase::End {
            return Err("output set before termination".to_owned());
        }
        Ok(())
    }

    // ---- transitions (Fig. 2) ----

    /// `compNext_p`.
    fn comp_next(&mut self) -> StepEvent {
        self.local_ops += 1;
        // Intersect TRY with FREE once, into a reusable scratch buffer: the
        // intersection both sizes `avail` and feeds the allocation-free
        // `rank_excluding_members` fast path. Across cache-skipped cycles
        // the intersection is provably unchanged — `TRY` did not move, and
        // the only `FREE` removals were this process's own performs, which
        // `check` guarantees are outside `TRY` — so it is reused verbatim;
        // the membership probes it *would* have made are still charged
        // (one basic operation per `TRY` element), keeping the work measure
        // identical to the recomputing path.
        let mut scratch = std::mem::take(&mut self.rank_scratch);
        if self.scratch_valid {
            self.local_ops += self.try_set.len() as u64;
        } else {
            scratch.clear();
            scratch.extend(
                self.try_set
                    .iter()
                    .copied()
                    .filter(|&t| self.free.contains(t)),
            );
            self.scratch_valid = self.epoch_cache;
        }
        let in_free = scratch.len();
        let avail = (self.free.len() - in_free) as u64;
        if avail >= self.beta {
            let f_len = self.free.len() as u64;
            let m = self.m as u64;
            let p = self.pid as u64;
            let idx = self.pick_rule.pick(p, m, f_len, avail);
            let picked =
                rank_excluding_members_hinted(&self.free, &scratch, idx as usize, self.sel_hint)
                    .expect("rank index within FREE \\ TRY (see §3 bounds)");
            self.next_job = picked;
            // Re-anchor on the fresh pick: its rank in FREE is its rank in
            // FREE \ TRY plus the excluded members below it.
            let excl_below = scratch.partition_point(|&e| e <= picked);
            self.sel_hint = Some(SelectHint {
                anchor: picked,
                rank: idx as usize + excl_below,
            });
            self.rank_scratch = scratch;
            self.q = 1;
            if !self.epoch_cache {
                self.try_set.clear();
                self.try_src.clear();
            }
            // With the cache on, `TRY` stays as the last sweep's result (it
            // is the image of `gt_vals`); the upcoming sweep rebuilds it only
            // if an announcement epoch actually moved.
            self.phase = KkPhase::SetNext;
            StepEvent::Local
        } else {
            self.rank_scratch = scratch;
            match self.mode {
                KkMode::Plain => {
                    self.phase = KkPhase::End;
                    StepEvent::Terminated
                }
                KkMode::IterStep { .. } => {
                    self.phase = KkPhase::SetFlag;
                    StepEvent::Local
                }
            }
        }
    }

    /// `setNext_p`.
    fn set_next<R: Registers + ?Sized>(&mut self, mem: &R) -> StepEvent {
        let cell = self.layout.next_cell(self.pid);
        mem.write(cell, self.next_job);
        self.my_writes += 1;
        self.phase = KkPhase::GatherTry;
        StepEvent::Write { cell }
    }

    /// The part of the global epoch this process did not produce itself —
    /// the number this process's sweep stamps are recorded against.
    #[inline]
    fn others_epoch<R: Registers + ?Sized>(&self, mem: &R) -> u64 {
        mem.global_epoch() - self.my_writes
    }

    /// Records a (possibly changed) observed announcement value, keeping the
    /// nonzero count in sync for O(1) sweep skips.
    #[inline]
    fn gt_update(&mut self, idx: usize, v: u64) {
        let old = self.gt_vals[idx];
        if old != v {
            self.gt_nonzero += usize::from(v > 0);
            self.gt_nonzero -= usize::from(old > 0);
            self.gt_vals[idx] = v;
            self.gt_dirty = true;
        }
    }

    /// Advances `POS(q)` past a consumed log entry, keeping the open-row
    /// count in sync for O(1) sweep skips.
    #[inline]
    fn advance_pos(&mut self, idx: usize) {
        self.pos[idx] += 1;
        if self.pos[idx] > self.layout.n() as u64 {
            self.gd_open -= 1;
        }
    }

    /// Closes a `gatherTry` sweep: rebuilds `TRY` from the announcement
    /// cache if any announcement changed, and publishes the sweep stamp.
    /// No-op counterpart of the cache-free path's per-visit inserts — the
    /// per-visit merge *accounting* already happened, so the rebuild itself
    /// charges nothing.
    ///
    /// The stamp is published only when the others' epoch is unchanged since
    /// the sweep's **first** action: a sweep may span scheduler turns, and a
    /// foreign write interleaved mid-sweep means the cached values were
    /// recorded at incoherent times — the whole-sweep skip must not trust
    /// them (the per-cell epoch path remains sound either way).
    fn finish_try_sweep<R: Registers + ?Sized>(&mut self, mem: &R) {
        if self.gt_dirty {
            self.scratch_valid = false;
            self.try_set.clear();
            self.try_src.clear();
            for q in 1..=self.m {
                if q == self.pid {
                    continue;
                }
                let v = self.gt_vals[q - 1];
                if v > 0 {
                    self.try_merge(v, q);
                }
            }
            self.gt_dirty = false;
        }
        if mem.epochs_enabled() {
            let now = self.others_epoch(mem);
            self.gt_stamp = (self.gt_sweep_start == Some(now)).then_some(now);
        }
        self.gt_sweep_start = None;
    }

    /// Closes a `gatherDone` sweep: publishes the sweep stamp (every watched
    /// frontier was read as `0` within one foreign-write-free window; see
    /// [`finish_try_sweep`](Self::finish_try_sweep) for why mid-sweep
    /// foreign writes forfeit the stamp).
    fn finish_done_sweep<R: Registers + ?Sized>(&mut self, mem: &R) {
        if mem.epochs_enabled() {
            let now = self.others_epoch(mem);
            self.gd_stamp = (self.gd_sweep_start == Some(now)).then_some(now);
        }
        self.gd_sweep_start = None;
    }

    /// Records the start-of-sweep stamp at the sweep's first action
    /// (`Q == 1`).
    #[inline]
    fn note_try_sweep_start<R: Registers + ?Sized>(&mut self, mem: &R) {
        if self.q == 1 && mem.epochs_enabled() {
            self.gt_sweep_start = Some(self.others_epoch(mem));
        }
    }

    /// Records the start-of-sweep stamp at the sweep's first action
    /// (`Q == 1`).
    #[inline]
    fn note_done_sweep_start<R: Registers + ?Sized>(&mut self, mem: &R) {
        if self.q == 1 && mem.epochs_enabled() {
            self.gd_sweep_start = Some(self.others_epoch(mem));
        }
    }

    /// One iteration of the `gatherTry_p` loop.
    fn gather_try<R: Registers + ?Sized>(&mut self, mem: &R, terminal: bool) -> StepEvent {
        if self.epoch_cache {
            self.note_try_sweep_start(mem);
        }
        let event = if self.q != self.pid {
            let cell = self.layout.next_cell(self.q);
            if self.epoch_cache {
                let idx = self.q - 1;
                let (hit, e) = if mem.epochs_enabled() {
                    let e = mem.epoch(cell);
                    (e == self.gt_epochs[idx], e)
                } else {
                    (false, 0)
                };
                // Full re-read on the single-step (traced) path; the event
                // still marks the access as cache-satisfiable.
                let v = mem.read(cell);
                if hit {
                    debug_assert_eq!(v, self.gt_vals[idx], "epoch hit with changed value");
                } else {
                    self.gt_epochs[idx] = e;
                    self.gt_update(idx, v);
                }
                if v > 0 {
                    // Merge accounting parity with the cache-free
                    // `try_insert`; the structural merge is deferred to the
                    // sweep-end rebuild.
                    self.local_ops += 1;
                }
                if hit {
                    StepEvent::CachedRead { cell }
                } else {
                    StepEvent::Read { cell }
                }
            } else {
                let v = mem.read(cell);
                if v > 0 {
                    self.try_insert(v, self.q);
                }
                StepEvent::Read { cell }
            }
        } else {
            StepEvent::Local
        };
        if self.q < self.m {
            self.q += 1;
        } else {
            if self.epoch_cache {
                self.finish_try_sweep(mem);
            }
            self.q = 1;
            self.phase = if terminal {
                KkPhase::FinalGatherDone
            } else {
                KkPhase::GatherDone
            };
        }
        event
    }

    /// One iteration of the `gatherDone_p` loop.
    fn gather_done<R: Registers + ?Sized>(&mut self, mem: &R, terminal: bool) -> StepEvent {
        if self.epoch_cache {
            self.note_done_sweep_start(mem);
        }
        let n = self.layout.n() as u64;
        let mut event = StepEvent::Local;
        if self.q != self.pid {
            let pos_q = self.pos[self.q - 1];
            if pos_q <= n {
                let cell = self.layout.done_cell(self.q, pos_q);
                if self.epoch_cache {
                    let idx = self.q - 1;
                    let (hit, e) = if mem.epochs_enabled() {
                        let e = mem.epoch(cell);
                        (e == self.gd_epochs[idx], e)
                    } else {
                        (false, u64::MAX)
                    };
                    let v = mem.read(cell);
                    event = if hit {
                        debug_assert_eq!(v, 0, "epoch hit on a written log cell");
                        StepEvent::CachedRead { cell }
                    } else {
                        StepEvent::Read { cell }
                    };
                    if v > 0 {
                        self.done_insert(v, self.q);
                        self.advance_pos(idx);
                        // Frontier moved: the recorded epoch refers to the
                        // previous slot.
                        self.gd_epochs[idx] = u64::MAX;
                        // Stay on the same row: more entries may follow.
                    } else {
                        self.gd_epochs[idx] = e;
                        self.q += 1;
                    }
                } else {
                    let v = mem.read(cell);
                    event = StepEvent::Read { cell };
                    if v > 0 {
                        self.done_insert(v, self.q);
                        self.advance_pos(self.q - 1);
                        // Stay on the same row: more entries may follow.
                    } else {
                        self.q += 1;
                    }
                }
            } else {
                self.q += 1;
            }
        } else {
            self.q += 1;
        }
        if self.q > self.m {
            if self.epoch_cache {
                self.finish_done_sweep(mem);
            }
            self.q = 1;
            self.phase = if terminal {
                KkPhase::Output
            } else {
                KkPhase::Check
            };
        }
        event
    }

    /// `check_p`.
    fn check(&mut self) -> StepEvent {
        self.local_ops += 1;
        let try_hit = self.try_set.binary_search(&self.next_job).ok();
        let done_hit = self.done_set.contains(self.next_job);
        if try_hit.is_none() && !done_hit {
            self.phase = match self.mode {
                KkMode::Plain => KkPhase::Do,
                KkMode::IterStep { .. } => KkPhase::FlagRead,
            };
        } else {
            if self.track_collisions {
                let src = try_hit
                    .map(|i| self.try_src[i])
                    .or_else(|| self.done_src.get(&self.next_job).copied());
                if let Some(src) = src {
                    if src != self.pid {
                        self.collisions_with[src - 1] += 1;
                    }
                }
            }
            self.phase = KkPhase::CompNext;
        }
        StepEvent::Local
    }

    /// IterStep: read the shared termination flag before performing.
    fn flag_read<R: Registers + ?Sized>(&mut self, mem: &R) -> StepEvent {
        let cell = self.layout.flag_cell().expect("IterStep layout has a flag");
        let v = mem.read(cell);
        if v == 0 {
            self.phase = KkPhase::Do;
        } else {
            self.begin_final_gather();
        }
        StepEvent::Read { cell }
    }

    /// `do_{p,j}`.
    fn do_job(&mut self) -> StepEvent {
        self.performs += 1;
        let span = self.span_map.span(self.next_job);
        self.phase = KkPhase::DoneWrite;
        StepEvent::Perform { span }
    }

    /// `done_p`.
    fn done_write<R: Registers + ?Sized>(&mut self, mem: &R) -> StepEvent {
        let pos_p = self.pos[self.pid - 1];
        let cell = self.layout.done_cell(self.pid, pos_p);
        mem.write(cell, self.next_job);
        self.my_writes += 1;
        self.done_insert(self.next_job, self.pid);
        self.pos[self.pid - 1] += 1;
        self.phase = KkPhase::CompNext;
        StepEvent::Write { cell }
    }

    /// IterStep: raise the shared termination flag.
    fn set_flag<R: Registers + ?Sized>(&mut self, mem: &R) -> StepEvent {
        let cell = self.layout.flag_cell().expect("IterStep layout has a flag");
        mem.write(cell, 1);
        self.my_writes += 1;
        self.begin_final_gather();
        StepEvent::Write { cell }
    }

    /// IterStep: compute the output set and terminate.
    fn output_and_end(&mut self) -> StepEvent {
        self.local_ops += 1;
        let output_free = match self.mode {
            KkMode::IterStep { output_free } => output_free,
            KkMode::Plain => unreachable!("Output phase is IterStep-only"),
        };
        let mut out = self.free.clone();
        if !output_free {
            for &t in &self.try_set {
                out.remove(t);
            }
        }
        self.output = Some(out);
        self.phase = KkPhase::End;
        StepEvent::Terminated
    }

    /// Dispatches one action of the automaton (shared by the [`Process`]
    /// `step` and the batched `step_many` fast path).
    fn step_one<R: Registers + ?Sized>(&mut self, mem: &R) -> StepEvent {
        debug_assert!(self.phase != KkPhase::End, "stepped after termination");
        match self.phase {
            KkPhase::CompNext => self.comp_next(),
            KkPhase::SetNext => self.set_next(mem),
            KkPhase::GatherTry => self.gather_try(mem, false),
            KkPhase::GatherDone => self.gather_done(mem, false),
            KkPhase::Check => self.check(),
            KkPhase::FlagRead => self.flag_read(mem),
            KkPhase::Do => self.do_job(),
            KkPhase::DoneWrite => self.done_write(mem),
            KkPhase::SetFlag => self.set_flag(mem),
            KkPhase::FinalGatherTry => self.gather_try(mem, true),
            KkPhase::FinalGatherDone => self.gather_done(mem, true),
            KkPhase::Output => self.output_and_end(),
            KkPhase::End => StepEvent::Terminated,
        }
    }

    fn begin_final_gather(&mut self) {
        if !self.epoch_cache {
            self.scratch_valid = false;
            self.try_set.clear();
            self.try_src.clear();
        }
        self.q = 1;
        self.phase = KkPhase::FinalGatherTry;
    }

    fn try_insert(&mut self, v: u64, src: usize) {
        self.local_ops += 1;
        self.scratch_valid = false;
        self.try_merge(v, src);
    }

    /// The structural part of [`try_insert`](Self::try_insert), without the
    /// work accounting — used by the epoch cache's sweep-end rebuild, whose
    /// merges were already charged at the per-visit actions.
    fn try_merge(&mut self, v: u64, src: usize) {
        match self.try_set.binary_search(&v) {
            Ok(_) => {}
            Err(i) => {
                self.try_set.insert(i, v);
                if self.track_collisions {
                    self.try_src.insert(i, src);
                }
            }
        }
    }

    fn done_insert(&mut self, v: u64, src: usize) {
        if src != self.pid {
            // A foreign job may be a `TRY` member: the cached intersection
            // is no longer trustworthy.
            self.scratch_valid = false;
        }
        // The fused `done.insert` + `free.remove` pair (see
        // `OrderedJobSet::insert_paired_remove`): one coordinate
        // computation serves both structures, with work accounting
        // identical to the unpaired sequence.
        let (inserted, removed) = self.done_set.insert_paired_remove(&mut self.free, v);
        if inserted {
            if removed {
                self.repair_hint_after_free_removal(v);
            }
            if self.track_collisions {
                self.done_src.insert(v, src);
            }
        }
    }

    /// Repairs the selection hint's prefix rank after `v` actually left
    /// `FREE`. The removed element is in hand regardless of who performed
    /// it — validity needs the element, not attribution — but the repair
    /// only fires on an *actual* removal: a foreign job outside this
    /// process's `FREE` (iterated stages shrink `FREE` below the universe)
    /// leaves the prefix count untouched. The single shared site keeps hint
    /// state evolving identically across the single-step and batched paths.
    #[inline]
    fn repair_hint_after_free_removal(&mut self, v: u64) {
        if let Some(h) = &mut self.sel_hint {
            if v <= h.anchor {
                h.rank -= 1;
            }
        }
    }
}

impl<S: OrderedJobSet> KkProcess<S> {
    /// Macro-stepping batched dispatcher — the shared body of
    /// [`Process::step_many`] (`phased == false`) and
    /// [`Process::step_turn`] (`phased == true`).
    ///
    /// The `gatherTry` and `gatherDone` loops — the dominant phases, costing
    /// `m − 1` and up to `n` sequential reads per `do` cycle — run as tight
    /// batched loops without per-action dispatch; every other phase is
    /// delegated to the single-action dispatcher. Each loop mirrors its
    /// single-step twin *action for action*, so a batch of `k` steps is
    /// indistinguishable from `k` engine-driven steps.
    ///
    /// In phased mode two extra rules keep a turn barrier-safe (see the
    /// [`Process::step_turn`] contract): the turn stops before re-entering
    /// `gatherTry` (the announcement written by `setNext` must cross an
    /// epoch barrier before anyone — including this process's next sweep —
    /// gathers it), and the fused whole-cycle arm is never taken (its
    /// gather half belongs to the next epoch by the same rule).
    fn step_batch<R: Registers + ?Sized>(
        &mut self,
        mem: &R,
        budget: u64,
        phased: bool,
    ) -> BatchOutcome {
        debug_assert!(budget >= 1, "step_batch needs a positive budget");
        let mut steps: u64 = 0;
        let mut performed: Vec<(u64, JobSpan)> = Vec::new();
        let epochs = mem.epochs_enabled();
        while steps < budget {
            if phased && steps > 0 && self.at_gather_boundary() {
                break;
            }
            match self.phase {
                // Fused cycle tail — announce, both gather sweeps, check,
                // do, log — taken when the whole remaining cycle is provably
                // determined: both sweep stamps certify that no other
                // process has written since this process's own clean sweeps,
                // so every gather read returns its cached value AND `check`
                // must pass (the candidate was just picked inside `FREE` and
                // outside `TRY`, and neither set moved). The block is
                // action-for-action the reference sequence of `2m + 4`
                // steps, collapsed to its two writes, one set transfer and
                // its accounting.
                KkPhase::SetNext
                    if !phased
                        && self.epoch_cache
                        && epochs
                        && matches!(self.mode, KkMode::Plain)
                        && budget - steps >= 2 * self.m as u64 + 4
                        && self.gt_stamp == Some(self.others_epoch(mem))
                        && self.gd_stamp == self.gt_stamp =>
                {
                    let m = self.m as u64;
                    // setNext (action 1).
                    mem.write(self.layout.next_cell(self.pid), self.next_job);
                    self.my_writes += 1;
                    // gatherTry sweep (actions 2 ..= m+1): m − 1 cached
                    // reads, one merge charge per cached announcement, TRY
                    // untouched.
                    self.local_ops += self.gt_nonzero as u64;
                    // gatherDone sweep (actions m+2 ..= 2m+1): every watched
                    // frontier provably still 0.
                    mem.note_reads(m - 1 + self.gd_open as u64);
                    // Both sweeps completed within one foreign-write-free
                    // window; re-publish the (unchanged) stamps.
                    let now = self.others_epoch(mem);
                    self.gt_stamp = Some(now);
                    self.gd_stamp = Some(now);
                    self.gt_sweep_start = None;
                    self.gd_sweep_start = None;
                    // check (action 2m+2) — passes, see above; the `DONE`
                    // membership probe still runs (it is part of the
                    // measured work, and provably returns false).
                    self.local_ops += 1;
                    let done_hit = self.done_set.contains(self.next_job);
                    debug_assert!(!done_hit, "fused-cycle candidate already performed");
                    debug_assert!(
                        self.try_set.binary_search(&self.next_job).is_err(),
                        "fused-cycle candidate inside TRY"
                    );
                    // do (action 2m+3).
                    self.performs += 1;
                    let span = self.span_map.span(self.next_job);
                    performed.push((steps + 2 * m + 2, span));
                    // doneWrite (action 2m+4).
                    let pos_p = self.pos[self.pid - 1];
                    mem.write(self.layout.done_cell(self.pid, pos_p), self.next_job);
                    self.my_writes += 1;
                    self.done_insert(self.next_job, self.pid);
                    self.pos[self.pid - 1] += 1;
                    steps += 2 * m + 4;
                    self.phase = KkPhase::CompNext;
                }
                KkPhase::GatherTry | KkPhase::FinalGatherTry => {
                    // Batched `gatherTry`: one announcement read (or a local
                    // self-skip) per action. Reads go through `peek` and are
                    // accounted in bulk at the end of the run.
                    let terminal = self.phase == KkPhase::FinalGatherTry;
                    if self.epoch_cache {
                        self.note_try_sweep_start(mem);
                    }
                    let rem = (self.m - self.q + 1) as u64;
                    if self.epoch_cache
                        && epochs
                        && budget - steps >= rem
                        && self.gt_stamp == Some(self.others_epoch(mem))
                    {
                        // Sweep-stamp fast path: nothing was written by any
                        // other process since this process's last completed
                        // sweep, so every remaining announcement provably
                        // still holds its cached value. The whole rest of
                        // the sweep collapses to its accounting: one action
                        // per `q`, one read per non-self `q`, one merge
                        // operation per cached non-zero announcement — O(1)
                        // via the maintained counters for the common
                        // full-sweep case.
                        let reads = if self.q == 1 {
                            self.local_ops += self.gt_nonzero as u64;
                            (self.m - 1) as u64
                        } else {
                            let mut r = 0u64;
                            for q in self.q..=self.m {
                                if q != self.pid {
                                    r += 1;
                                    if self.gt_vals[q - 1] > 0 {
                                        self.local_ops += 1;
                                    }
                                }
                            }
                            r
                        };
                        steps += rem;
                        mem.note_reads(reads);
                        self.finish_try_sweep(mem);
                        self.q = 1;
                        self.phase = if terminal {
                            KkPhase::FinalGatherDone
                        } else {
                            KkPhase::GatherDone
                        };
                    } else if self.epoch_cache {
                        // Per-action cache path: announcements are loaded
                        // (the `next` region is hot — an epoch probe would
                        // cost as much as the value itself) and compared to
                        // the cached copy; `TRY` is only rebuilt at sweep
                        // end when some value actually changed. Stale
                        // `gt_epochs` are harmless: per-cell epochs are
                        // monotone, so a stale entry can only miss, never
                        // falsely hit.
                        let mut reads = 0u64;
                        while steps < budget {
                            if self.q != self.pid {
                                let idx = self.q - 1;
                                let v = mem.peek(self.layout.next_cell(self.q));
                                self.gt_update(idx, v);
                                reads += 1;
                                if v > 0 {
                                    self.local_ops += 1;
                                }
                            }
                            steps += 1;
                            if self.q < self.m {
                                self.q += 1;
                            } else {
                                self.finish_try_sweep(mem);
                                self.q = 1;
                                self.phase = if terminal {
                                    KkPhase::FinalGatherDone
                                } else {
                                    KkPhase::GatherDone
                                };
                                break;
                            }
                        }
                        mem.note_reads(reads);
                    } else {
                        let mut reads = 0u64;
                        while steps < budget {
                            if self.q != self.pid {
                                let v = mem.peek(self.layout.next_cell(self.q));
                                reads += 1;
                                if v > 0 {
                                    self.try_insert(v, self.q);
                                }
                            }
                            steps += 1;
                            if self.q < self.m {
                                self.q += 1;
                            } else {
                                self.q = 1;
                                self.phase = if terminal {
                                    KkPhase::FinalGatherDone
                                } else {
                                    KkPhase::GatherDone
                                };
                                break;
                            }
                        }
                        mem.note_reads(reads);
                    }
                }
                KkPhase::GatherDone | KkPhase::FinalGatherDone => {
                    // Batched `gatherDone`: walk the other processes' log
                    // rows, one read (or row/self skip) per action, with the
                    // reads accounted in bulk.
                    let terminal = self.phase == KkPhase::FinalGatherDone;
                    if self.epoch_cache {
                        self.note_done_sweep_start(mem);
                    }
                    let n = self.layout.n() as u64;
                    let rem = (self.m - self.q + 1) as u64;
                    if self.epoch_cache
                        && epochs
                        && budget - steps >= rem
                        && self.gd_stamp == Some(self.others_epoch(mem))
                    {
                        // Sweep-stamp fast path: every watched log frontier
                        // was read as `0` within the last clean sweep and no
                        // process has written since, so the whole sweep is
                        // provably `rem` actions reading zeros — no log
                        // cell (cold, scattered at large `n`) is touched;
                        // O(1) via the open-row counter for the common
                        // full-sweep case.
                        let reads = if self.q == 1 {
                            self.gd_open as u64
                        } else {
                            let mut r = 0u64;
                            for q in self.q..=self.m {
                                if q != self.pid && self.pos[q - 1] <= n {
                                    r += 1;
                                }
                            }
                            r
                        };
                        steps += rem;
                        mem.note_reads(reads);
                        self.finish_done_sweep(mem);
                        self.q = 1;
                        self.phase = if terminal {
                            KkPhase::Output
                        } else {
                            KkPhase::Check
                        };
                    } else {
                        // Per-action path, action-for-action the cache-free
                        // loop but with the per-row log walk hoisted: a
                        // backlog of consecutive entries advances the cell
                        // index by `done_stride` instead of recomputing the
                        // layout mapping per entry — this walk is the
                        // algorithm's Θ(n·m) term and dominates simulated
                        // wall-clock. (No per-cell epoch probes here: the
                        // frontier cells are cold, so a probe would cost
                        // exactly the load it replaces; the whole-sweep
                        // stamp above is where `gatherDone` redundancy is
                        // harvested. Stale `gd_epochs` entries can only
                        // miss in the single-step twin, never falsely hit.)
                        let cache = self.epoch_cache;
                        let stride = self.layout.done_stride();
                        let mut reads = 0u64;
                        'gd: while steps < budget {
                            if self.q != self.pid {
                                let idx = self.q - 1;
                                let pos_q = self.pos[idx];
                                if pos_q <= n {
                                    let mut cell = self.layout.done_cell(self.q, pos_q);
                                    let mut pos = pos_q;
                                    loop {
                                        let v = mem.peek(cell);
                                        reads += 1;
                                        steps += 1;
                                        if v > 0 {
                                            // Fused foreign merge, as in
                                            // `done_insert`.
                                            let (inserted, removed) = self
                                                .done_set
                                                .insert_paired_remove(&mut self.free, v);
                                            if inserted {
                                                if removed {
                                                    self.repair_hint_after_free_removal(v);
                                                }
                                                if self.track_collisions {
                                                    self.done_src.insert(v, self.q);
                                                }
                                            }
                                            pos += 1;
                                            // A freshly exhausted row is
                                            // left for the outer loop: the
                                            // `POS(q) > n` skip is its own
                                            // action, as in single-step.
                                            if steps >= budget || pos > n {
                                                break;
                                            }
                                            cell += stride;
                                        } else {
                                            self.q += 1;
                                            break;
                                        }
                                    }
                                    if pos != pos_q {
                                        // Row bookkeeping once per walk, not
                                        // per entry. Foreign jobs were
                                        // merged, so the cached `TRY ∩ FREE`
                                        // intersection is stale.
                                        self.scratch_valid = false;
                                        self.pos[idx] = pos;
                                        if pos > n {
                                            self.gd_open -= 1;
                                        }
                                        if cache {
                                            self.gd_epochs[idx] = u64::MAX;
                                        }
                                    }
                                } else {
                                    self.q += 1;
                                    steps += 1;
                                }
                            } else {
                                self.q += 1;
                                steps += 1;
                            }
                            if self.q > self.m {
                                if cache {
                                    self.finish_done_sweep(mem);
                                }
                                self.q = 1;
                                self.phase = if terminal {
                                    KkPhase::Output
                                } else {
                                    KkPhase::Check
                                };
                                break 'gd;
                            }
                        }
                        mem.note_reads(reads);
                    }
                }
                _ => {
                    let event = self.step_one(mem);
                    steps += 1;
                    match event {
                        StepEvent::Perform { span } => performed.push((steps - 1, span)),
                        StepEvent::Terminated => {
                            return BatchOutcome {
                                steps,
                                performed,
                                terminated: true,
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        BatchOutcome {
            steps,
            performed,
            terminated: false,
        }
    }

    /// `true` at the phased-turn communication boundary: about to start a
    /// fresh `gatherTry` sweep (`q == 1` distinguishes a sweep *start* from
    /// a budget-cut sweep resumption, which is not a boundary).
    fn at_gather_boundary(&self) -> bool {
        matches!(self.phase, KkPhase::GatherTry | KkPhase::FinalGatherTry) && self.q == 1
    }
}

impl<R: Registers + ?Sized, S: OrderedJobSet> Process<R> for KkProcess<S> {
    fn step(&mut self, mem: &R) -> StepEvent {
        self.step_one(mem)
    }

    /// Macro-stepping fast path (see the [`Process::step_many`] contract)
    /// — the batched dispatcher without phased boundaries.
    fn step_many(&mut self, mem: &R, budget: u64) -> BatchOutcome {
        self.step_batch(mem, budget, false)
    }

    /// Phased turn (see [`Process::step_turn`]): the batched dispatcher
    /// with the epoch-barrier communication boundary enforced — announce
    /// this epoch, gather the next.
    fn step_turn(&mut self, mem: &R, budget: u64) -> BatchOutcome {
        self.step_batch(mem, budget, true)
    }

    fn at_comm_boundary(&self) -> bool {
        self.at_gather_boundary()
    }

    fn pid(&self) -> usize {
        self.pid
    }

    fn is_terminated(&self) -> bool {
        KkProcess::is_terminated(self)
    }

    fn local_work(&self) -> u64 {
        KkProcess::local_work(self)
    }
}

/// The scenario-layer registry entry for KKβ: resolves the three
/// paper-specific adversaries by name (the same labels the legacy
/// [`SchedulerKind`](crate::SchedulerKind) reported) and wires the
/// announcement-epoch cache and collision instrumentation into the generic
/// driver's hooks. Works for every order-statistics backend, since the
/// adversaries only inspect backend-agnostic automaton state — and for
/// every *register* backend, since the hooks carry no `Process<R>` bounds
/// (the generic `Process` impl above covers any `R: Registers`).
impl<S: OrderedJobSet> amo_sim::ScenarioHooks for KkProcess<S> {
    fn adversary(name: &str) -> Option<Box<dyn amo_sim::Scheduler<Self>>> {
        match name {
            "stuck-announcement" => {
                Some(Box::new(crate::adversary::StuckAnnouncementAdversary::new()))
            }
            "staleness" => Some(Box::new(crate::adversary::StalenessAdversary::new())),
            _ => crate::adversary::generic_adversary(name),
        }
    }

    fn set_epoch_cache(&mut self, enabled: bool) {
        KkProcess::set_epoch_cache(self, enabled);
    }

    fn set_collision_tracking(&mut self, enabled: bool) {
        KkProcess::set_collision_tracking(self, enabled);
    }
}

// Equality and hashing cover the *semantic* state (everything the automaton's
// future behaviour depends on) and exclude instrumentation counters, so the
// exhaustive explorer merges states that differ only in bookkeeping.
// `gt_vals`/`gt_dirty` are semantic when the epoch cache is on (they feed the
// sweep-end `TRY` rebuild); with the cache off they are frozen at their
// initial values, so including them never splits cache-free states. The
// remaining cache fields (`gt_epochs`, stamps, `gd_epochs`, `my_writes`) are
// pure memoisation — a hit returns exactly what a re-read would — and stay
// excluded; so is `sel_hint`, since hinted and unhinted selection walks
// return identical elements.
impl<S: OrderedJobSet> PartialEq for KkProcess<S> {
    fn eq(&self, other: &Self) -> bool {
        self.pid == other.pid
            && self.m == other.m
            && self.beta == other.beta
            && self.mode == other.mode
            && self.pick_rule == other.pick_rule
            && self.phase == other.phase
            && self.next_job == other.next_job
            && self.q == other.q
            && self.try_set == other.try_set
            && self.pos == other.pos
            && self.gt_vals == other.gt_vals
            && self.gt_dirty == other.gt_dirty
            && self.free == other.free
            && self.done_set == other.done_set
            && self.output == other.output
    }
}

impl<S: OrderedJobSet> Eq for KkProcess<S> {}

impl<S: OrderedJobSet> Hash for KkProcess<S> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.pid.hash(state);
        self.pick_rule.hash(state);
        self.phase.hash(state);
        self.next_job.hash(state);
        self.q.hash(state);
        self.try_set.hash(state);
        self.pos.hash(state);
        self.gt_vals.hash(state);
        self.gt_dirty.hash(state);
        self.free.hash(state);
        self.done_set.hash(state);
        self.output.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::VecRegisters;

    fn single(n: usize) -> (KkProcess, VecRegisters) {
        let config = KkConfig::new(n, 1).unwrap();
        let layout = KkLayout::contiguous(1, n, false);
        let mem = VecRegisters::new(layout.cells());
        (KkProcess::from_config(1, &config, layout), mem)
    }

    fn drive(p: &mut KkProcess, mem: &VecRegisters) -> Vec<JobSpan> {
        let mut performed = Vec::new();
        let mut guard = 0;
        while !p.is_terminated() {
            if let StepEvent::Perform { span } = p.step(mem) {
                performed.push(span);
            }
            guard += 1;
            assert!(guard < 1_000_000, "automaton did not terminate");
        }
        performed
    }

    #[test]
    fn initial_state_matches_figure_1() {
        let (p, _) = single(5);
        assert_eq!(p.phase(), KkPhase::CompNext);
        assert_eq!(p.free_len(), 5, "FREE = J");
        assert_eq!(p.done_len(), 0, "DONE = ∅");
        assert_eq!(p.current_job(), None, "NEXT undefined");
        assert_eq!(p.performs(), 0);
    }

    #[test]
    fn lone_process_with_beta_1_performs_everything() {
        let (mut p, mem) = single(6);
        let performed = drive(&mut p, &mem);
        let mut jobs: Vec<u64> = performed.iter().map(|s| s.lo).collect();
        jobs.sort_unstable();
        assert_eq!(jobs, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(p.performs(), 6);
    }

    #[test]
    fn lone_process_terminates_with_beta_jobs_left() {
        let config = KkConfig::with_beta(10, 1, 4).unwrap();
        let layout = KkLayout::contiguous(1, 10, false);
        let mem = VecRegisters::new(layout.cells());
        let mut p: KkProcess = KkProcess::from_config(1, &config, layout);
        let performed = drive(&mut p, &mem);
        // Terminates when |FREE| < β = 4, i.e. after n − β + 1 = 7 jobs.
        assert_eq!(performed.len(), 7);
        assert_eq!(p.free_len(), 3);
    }

    #[test]
    fn announcement_goes_through_shared_memory() {
        let (mut p, mem) = single(5);
        p.step(&mem); // compNext
        assert_eq!(p.phase(), KkPhase::SetNext);
        let job = p.current_job().expect("candidate chosen");
        p.step(&mem); // setNext
        assert_eq!(mem.snapshot()[0], job, "next_1 holds the announcement");
        assert!(p.has_announced());
    }

    #[test]
    fn rank_split_puts_processes_in_disjoint_intervals() {
        // With m = 4, n = 100: process p picks rank ⌊(p−1)·97/4⌋ + 1 of FREE.
        let m = 4;
        let n = 100;
        let layout = KkLayout::contiguous(m, n, false);
        let mut picks = Vec::new();
        for pid in 1..=m {
            let config = KkConfig::new(n, m).unwrap();
            let mem = VecRegisters::new(layout.cells());
            let mut p: KkProcess = KkProcess::from_config(pid, &config, layout);
            p.step(&mem); // compNext only
            picks.push(p.current_job().unwrap());
        }
        let num = (n - (m - 1)) as u64;
        let want: Vec<u64> = (1..=m as u64)
            .map(|p| (p - 1) * num / m as u64 + 1)
            .collect();
        assert_eq!(picks, want);
        let mut dedup = picks.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), m, "distinct first picks");
    }

    #[test]
    fn gather_try_collects_announcements() {
        let m = 3;
        let n = 9;
        let config = KkConfig::new(n, m).unwrap();
        let layout = KkLayout::contiguous(m, n, false);
        let mem = VecRegisters::new(layout.cells());
        // Others announced jobs 4 and 7.
        mem.write(layout.next_cell(2), 4);
        mem.write(layout.next_cell(3), 7);
        let mut p: KkProcess = KkProcess::from_config(1, &config, layout);
        p.step(&mem); // compNext
        p.step(&mem); // setNext
        assert_eq!(p.phase(), KkPhase::GatherTry);
        for _ in 0..m {
            p.step(&mem);
        }
        assert_eq!(p.phase(), KkPhase::GatherDone);
        assert_eq!(p.try_set, vec![4, 7]);
    }

    #[test]
    fn gather_done_walks_rows_and_updates_free() {
        let m = 2;
        let n = 8;
        let config = KkConfig::new(n, m).unwrap();
        let layout = KkLayout::contiguous(m, n, false);
        let mem = VecRegisters::new(layout.cells());
        // Process 2 has logged jobs 5 and 6.
        mem.write(layout.done_cell(2, 1), 5);
        mem.write(layout.done_cell(2, 2), 6);
        let mut p: KkProcess = KkProcess::from_config(1, &config, layout);
        p.step(&mem); // compNext
        p.step(&mem); // setNext
        p.step(&mem); // gatherTry q=1 (self)
        p.step(&mem); // gatherTry q=2
        assert_eq!(p.phase(), KkPhase::GatherDone);
        // gatherDone: q=1 self-skip, then row 2: read 5, read 6, read 0.
        for _ in 0..4 {
            p.step(&mem);
        }
        assert_eq!(p.phase(), KkPhase::Check);
        assert_eq!(p.done_len(), 2);
        assert_eq!(p.free_len(), n - 2);
        assert!(!p.free_contains(5) && !p.free_contains(6));
    }

    #[test]
    fn check_fails_on_announced_job_and_recomputes() {
        let m = 2;
        let n = 8;
        let config = KkConfig::new(n, m).unwrap();
        let layout = KkLayout::contiguous(m, n, false);
        let mem = VecRegisters::new(layout.cells());
        let mut p: KkProcess = KkProcess::from_config(1, &config, layout);
        p.step(&mem); // compNext → picks job 1 (p = 1)
        let first = p.current_job().unwrap();
        // Process 2 announces the same job before p gathers.
        mem.write(layout.next_cell(2), first);
        p.step(&mem); // setNext
        p.step(&mem); // gatherTry self
        p.step(&mem); // gatherTry q=2 → TRY = {first}
        p.step(&mem); // gatherDone self
        p.step(&mem); // gatherDone q=2 → empty row
        assert_eq!(p.phase(), KkPhase::Check);
        p.step(&mem); // check fails
        assert_eq!(p.phase(), KkPhase::CompNext);
        p.step(&mem); // compNext picks a different job
        assert_ne!(p.current_job().unwrap(), first);
        assert_eq!(p.performs(), 0, "nothing performed on a collision");
    }

    #[test]
    fn done_write_appends_to_own_row() {
        let (mut p, mem) = single(3);
        // compNext, setNext, gatherTry(self), gatherDone(self), check, do, done
        for _ in 0..7 {
            p.step(&mem);
        }
        let layout = KkLayout::contiguous(1, 3, false);
        let row0 = mem.snapshot()[layout.done_cell(1, 1)];
        assert_eq!(row0, 1, "first performed job logged at POS 1");
        assert_eq!(p.performs(), 1);
    }

    #[test]
    fn collision_tracking_attributes_to_source() {
        let m = 2;
        let n = 8;
        let config = KkConfig::new(n, m).unwrap();
        let layout = KkLayout::contiguous(m, n, false);
        let mem = VecRegisters::new(layout.cells());
        let mut p: KkProcess = KkProcess::from_config(1, &config, layout).with_collision_tracking();
        p.step(&mem);
        let first = p.current_job().unwrap();
        mem.write(layout.next_cell(2), first);
        for _ in 0..6 {
            p.step(&mem);
        }
        assert_eq!(p.collisions_with()[1], 1, "collision attributed to pid 2");
        assert_eq!(p.collisions_with()[0], 0);
    }

    #[test]
    #[should_panic(expected = "requires a flag cell")]
    fn iter_step_requires_flag_cell() {
        let layout = KkLayout::contiguous(1, 4, false);
        let free = FenwickSet::with_all(4);
        let _ = KkProcess::new(
            1,
            1,
            1,
            layout,
            free,
            KkMode::IterStep { output_free: false },
            SpanMap::Identity,
        );
    }

    #[test]
    fn iter_step_terminates_with_output_and_sets_flag() {
        let n = 10;
        let layout = KkLayout::contiguous(1, n, true);
        let mem = VecRegisters::new(layout.cells());
        let free = FenwickSet::with_all(n);
        // β = 4: stops once fewer than 4 candidates remain.
        let mut p = KkProcess::new(
            1,
            1,
            4,
            layout,
            free,
            KkMode::IterStep { output_free: false },
            SpanMap::Identity,
        );
        let mut performed = 0;
        while !p.is_terminated() {
            if let StepEvent::Perform { .. } = Process::<VecRegisters>::step(&mut p, &mem) {
                performed += 1;
            }
        }
        assert_eq!(performed, n - 4 + 1);
        assert_eq!(
            mem.snapshot()[layout.flag_cell().unwrap()],
            1,
            "flag raised"
        );
        let out = p.output().expect("output available");
        assert_eq!(out.len(), 3, "the 3 unperformed jobs are handed on");
    }

    #[test]
    fn iter_step_aborts_do_when_flag_already_set() {
        let n = 10;
        let layout = KkLayout::contiguous(1, n, true);
        let mem = VecRegisters::new(layout.cells());
        mem.write(layout.flag_cell().unwrap(), 1); // flag pre-set by "someone"
        let free = FenwickSet::with_all(n);
        let mut p = KkProcess::new(
            1,
            1,
            4,
            layout,
            free,
            KkMode::IterStep { output_free: false },
            SpanMap::Identity,
        );
        let mut performed = 0;
        while !p.is_terminated() {
            if let StepEvent::Perform { .. } = Process::<VecRegisters>::step(&mut p, &mem) {
                performed += 1;
            }
        }
        assert_eq!(performed, 0, "flag read before every do");
        assert_eq!(p.output().unwrap().len(), n, "everything handed on");
    }

    #[test]
    fn wa_variant_outputs_free_including_try() {
        let n = 10;
        let m = 2;
        let layout = KkLayout::contiguous(m, n, true);
        let mem = VecRegisters::new(layout.cells());
        mem.write(layout.flag_cell().unwrap(), 1);
        // Process 2 announces job 3, so 3 lands in TRY of process 1.
        mem.write(layout.next_cell(2), 3);
        let free = FenwickSet::with_all(n);
        let mut p = KkProcess::new(
            1,
            m,
            m as u64,
            layout,
            free,
            KkMode::IterStep { output_free: true },
            SpanMap::Identity,
        );
        while !p.is_terminated() {
            Process::<VecRegisters>::step(&mut p, &mem);
        }
        assert_eq!(p.output().unwrap().len(), n, "WA output keeps TRY jobs");
    }

    #[test]
    fn blocks_span_map() {
        let map = SpanMap::Blocks {
            size: 4,
            total_jobs: 10,
        };
        assert_eq!(map.span(1), JobSpan::new(1, 4));
        assert_eq!(map.span(2), JobSpan::new(5, 8));
        assert_eq!(map.span(3), JobSpan::new(9, 10), "last block is clipped");
    }

    #[test]
    fn invariants_hold_at_every_step_of_an_execution() {
        let m = 3;
        let n = 24;
        let config = KkConfig::new(n, m).unwrap();
        let layout = KkLayout::contiguous(m, n, false);
        let mem = VecRegisters::new(layout.cells());
        let mut fleet: Vec<KkProcess> = (1..=m)
            .map(|p| KkProcess::from_config(p, &config, layout))
            .collect();
        let mut rr = 0usize;
        let mut guard = 0;
        while fleet.iter().any(|p| !p.is_terminated()) {
            rr = (rr + 1) % m;
            if fleet[rr].is_terminated() {
                continue;
            }
            fleet[rr].step(&mem);
            fleet[rr].check_invariants().expect("invariant");
            guard += 1;
            assert!(guard < 1_000_000);
        }
    }

    #[test]
    fn invariants_hold_in_iter_mode() {
        let n = 16;
        let layout = KkLayout::contiguous(1, n, true);
        let mem = VecRegisters::new(layout.cells());
        let mut p = KkProcess::new(
            1,
            1,
            3,
            layout,
            FenwickSet::with_all(n),
            KkMode::IterStep { output_free: false },
            SpanMap::Identity,
        );
        while !p.is_terminated() {
            Process::<VecRegisters>::step(&mut p, &mem);
            p.check_invariants().expect("invariant");
        }
        p.check_invariants().expect("terminal invariant");
    }

    #[test]
    fn semantic_equality_ignores_instrumentation() {
        let (a, mem) = single(4);
        let mut b = a.clone().with_collision_tracking();
        let mut a = a;
        a.step(&mem);
        b.step(&mem);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let h = |p: &KkProcess| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    impl KkProcess {
        fn free_contains(&self, id: u64) -> bool {
            self.free.contains(id)
        }
    }
}
