/// Pairwise collision counts for an execution (experiment E7).
///
/// `counts[p − 1][q − 1]` is the number of times process `p` *detected a
/// collision with* process `q` in the sense of Definition 5.2: `p` abandoned
/// its announced candidate because it saw `q`'s announcement or `q`'s
/// completion log entry for the same job.
///
/// Lemma 5.5 bounds each entry, for `β ≥ 3m²`, by `2·⌈n / (m·|q − p|)⌉`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollisionMatrix {
    counts: Vec<Vec<u64>>,
    n: usize,
}

impl CollisionMatrix {
    /// Builds the matrix from per-process collision rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not square.
    pub fn new(counts: Vec<Vec<u64>>, n: usize) -> Self {
        let m = counts.len();
        for row in &counts {
            assert_eq!(row.len(), m, "collision matrix must be square");
        }
        Self { counts, n }
    }

    /// Number of processes `m`.
    pub fn m(&self) -> usize {
        self.counts.len()
    }

    /// Collisions process `p` detected with process `q` (both 1-based).
    pub fn between(&self, p: usize, q: usize) -> u64 {
        self.counts[p - 1][q - 1]
    }

    /// Total collisions detected across all pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The Lemma 5.5 bound `2·⌈n / (m·|q − p|)⌉` for a pair, or `None` for
    /// `p == q` (a process never collides with itself).
    pub fn lemma_bound(&self, p: usize, q: usize) -> Option<u64> {
        if p == q {
            return None;
        }
        let m = self.m() as u64;
        let dist = p.abs_diff(q) as u64;
        Some(2 * (self.n as u64).div_ceil(m * dist))
    }

    /// Pairs `(p, q, count, bound)` that exceed the Lemma 5.5 bound.
    ///
    /// The lemma requires `β ≥ 3m²`; calling this for smaller `β` simply
    /// reports which pairs would violate it.
    pub fn exceeding_lemma_bound(&self) -> Vec<(usize, usize, u64, u64)> {
        let m = self.m();
        let mut out = Vec::new();
        for p in 1..=m {
            for q in 1..=m {
                if let Some(bound) = self.lemma_bound(p, q) {
                    let c = self.between(p, q);
                    if c > bound {
                        out.push((p, q, c, bound));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_and_total() {
        let m = CollisionMatrix::new(vec![vec![0, 2], vec![3, 0]], 100);
        assert_eq!(m.m(), 2);
        assert_eq!(m.between(1, 2), 2);
        assert_eq!(m.between(2, 1), 3);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn lemma_bound_formula() {
        let m = CollisionMatrix::new(vec![vec![0; 4]; 4], 100);
        // 2 * ceil(100 / (4 * 1)) = 50; distance 3: 2 * ceil(100/12) = 18.
        assert_eq!(m.lemma_bound(1, 2), Some(50));
        assert_eq!(m.lemma_bound(1, 4), Some(18));
        assert_eq!(m.lemma_bound(2, 2), None);
    }

    #[test]
    fn exceeding_detects_overflow() {
        let mut rows = vec![vec![0u64; 2]; 2];
        rows[0][1] = 1_000; // way over 2*ceil(10/2) = 10
        let m = CollisionMatrix::new(rows, 10);
        let bad = m.exceeding_lemma_bound();
        assert_eq!(bad, vec![(1, 2, 1_000, 10)]);
    }

    #[test]
    fn clean_matrix_has_no_excess() {
        let m = CollisionMatrix::new(vec![vec![0, 1], vec![1, 0]], 64);
        assert!(m.exceeding_lemma_bound().is_empty());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        CollisionMatrix::new(vec![vec![0, 1], vec![0]], 8);
    }
}
