//! Re-export of the simulation arena, which moved to `amo-sim` with the
//! unified scenario layer (the generic `run_scenario` driver leases from it
//! for every algorithm stack, so the pool lives next to the engine).
//!
//! [`FleetArena`] is re-exported here unchanged, so existing
//! `amo_core::FleetArena` / `amo_core::arena::FleetArena` callers keep
//! compiling.
//!
//! # Examples
//!
//! ```
//! use amo_core::{run_simulated_in, FleetArena, KkConfig, SimOptions};
//!
//! let mut arena = FleetArena::new();
//! for n in [64usize, 128, 256] {
//!     let config = KkConfig::new(n, 4)?;
//!     let report = run_simulated_in(&mut arena, &config, SimOptions::round_robin_batched());
//!     assert!(report.violations.is_empty());
//! }
//! assert_eq!(arena.leases(), 3);
//! assert!(arena.reuses() >= 2, "buffers were recycled, not reallocated");
//! # Ok::<(), amo_core::ConfigError>(())
//! ```

pub use amo_sim::arena::FleetArena;
