/// Maps the paper's named shared variables onto a flat register file.
///
/// KKβ uses (Fig. 1):
///
/// * `next[1..m]` — single-writer announcement registers, one per process;
/// * `done[1..m][1..n]` — per-process append-only logs of completed jobs;
/// * optionally one `flag` register — the termination flag of the
///   `IterStepKK` variant (§6).
///
/// All cells are zero-initialised, matching the paper's `init` values
/// (`next_q = 0`, `done_{q,i} = 0`).
///
/// # Examples
///
/// ```
/// use amo_core::KkLayout;
///
/// let layout = KkLayout::contiguous(3, 10, false);
/// assert_eq!(layout.cells(), 3 + 3 * 10);
/// assert_eq!(layout.next_cell(1), 0);
/// assert_eq!(layout.done_cell(2, 1), 3 + 10); // row of process 2, first slot
/// assert!(layout.flag_cell().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KkLayout {
    m: usize,
    n: usize,
    base: usize,
    flag: Option<usize>,
    /// `false`: `done` is row-major (process-major, the paper's picture);
    /// `true`: position-major — the fleet's logs as a struct of arrays.
    interleaved: bool,
}

impl KkLayout {
    /// Lays out `next`, `done` and (optionally) `flag` contiguously starting
    /// at cell 0.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn contiguous(m: usize, n: usize, with_flag: bool) -> Self {
        Self::at_base(m, n, 0, with_flag)
    }

    /// Lays the variables out starting at `base` — used by the iterated
    /// algorithms, which stack one layout per stage in a single register
    /// file.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn at_base(m: usize, n: usize, base: usize, with_flag: bool) -> Self {
        assert!(m > 0, "layout needs at least one process");
        let flag = with_flag.then_some(base + m + m * n);
        Self {
            m,
            n,
            base,
            flag,
            interleaved: false,
        }
    }

    /// Switches the `done` region to the *interleaved* (position-major,
    /// struct-of-arrays) cell order: `done_{q,pos}` lives at
    /// `base + m + (pos−1)·m + (q−1)`, so the fleet's log entries at equal
    /// positions share cache lines.
    ///
    /// Under fair schedules all processes append at similar rates, so a
    /// `gatherDone` sweep — which reads `done_{q,POS(q)}` for every other
    /// `q` at closely clustered `POS` values — touches a handful of adjacent
    /// lines instead of `m − 1` lines scattered `n` cells apart (one cold
    /// miss per row once `m·n` outgrows the cache). The mapping is a
    /// bijection on the same cell range with all cells zero-initialised
    /// either way, so executions are isomorphic: every observable —
    /// performed jobs, step indices, read/write *counts* — is identical;
    /// only the cell *indices* in traces differ. All processes of a fleet
    /// must of course agree on one order.
    pub fn with_interleaved_done(mut self) -> Self {
        self.interleaved = true;
        self
    }

    /// `true` when the `done` region uses the interleaved (position-major)
    /// order.
    pub fn interleaved_done(&self) -> bool {
        self.interleaved
    }

    /// Number of processes.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Size of the job universe (row length of `done`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// First cell of this layout.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Total cells occupied: `m + m·n` plus one if the flag is present.
    pub fn cells(&self) -> usize {
        self.m + self.m * self.n + usize::from(self.flag.is_some())
    }

    /// One past the last cell of this layout.
    pub fn end(&self) -> usize {
        self.base + self.cells()
    }

    /// The announcement register `next_q` of process `q ∈ 1..=m`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `q` is out of range.
    #[inline]
    pub fn next_cell(&self, q: usize) -> usize {
        debug_assert!((1..=self.m).contains(&q), "pid {q} out of 1..={}", self.m);
        self.base + (q - 1)
    }

    /// The log slot `done_{q,pos}` of process `q ∈ 1..=m`, `pos ∈ 1..=n`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `q` or `pos` is out of range.
    #[inline]
    pub fn done_cell(&self, q: usize, pos: u64) -> usize {
        debug_assert!((1..=self.m).contains(&q), "pid {q} out of 1..={}", self.m);
        debug_assert!(
            pos >= 1 && pos <= self.n as u64,
            "pos {pos} out of 1..={}",
            self.n
        );
        if self.interleaved {
            self.base + self.m + (pos as usize - 1) * self.m + (q - 1)
        } else {
            self.base + self.m + (q - 1) * self.n + (pos as usize - 1)
        }
    }

    /// The termination-flag cell, if this layout has one.
    pub fn flag_cell(&self) -> Option<usize> {
        self.flag
    }

    /// Cell-index stride between `done_{q,pos}` and `done_{q,pos+1}` —
    /// `1` row-major, `m` interleaved. Batched log walks hoist
    /// `done_cell(q, pos)` out of their inner loop and advance by this.
    #[inline]
    pub fn done_stride(&self) -> usize {
        if self.interleaved {
            self.m
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_cells_are_the_first_m() {
        let l = KkLayout::contiguous(4, 7, false);
        assert_eq!(
            (1..=4).map(|q| l.next_cell(q)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn done_rows_are_disjoint_and_dense() {
        let l = KkLayout::contiguous(3, 5, false);
        let mut seen = std::collections::HashSet::new();
        for q in 1..=3 {
            for pos in 1..=5u64 {
                assert!(seen.insert(l.done_cell(q, pos)), "cell reused");
            }
        }
        assert_eq!(seen.len(), 15);
        let min = *seen.iter().min().unwrap();
        let max = *seen.iter().max().unwrap();
        assert_eq!(min, 3);
        assert_eq!(max, 3 + 15 - 1);
    }

    #[test]
    fn flag_sits_after_done() {
        let l = KkLayout::contiguous(2, 4, true);
        assert_eq!(l.flag_cell(), Some(2 + 8));
        assert_eq!(l.cells(), 2 + 8 + 1);
    }

    #[test]
    fn based_layout_offsets_everything() {
        let l = KkLayout::at_base(2, 3, 100, true);
        assert_eq!(l.next_cell(1), 100);
        assert_eq!(l.done_cell(1, 1), 102);
        assert_eq!(l.done_cell(2, 3), 102 + 3 + 2);
        assert_eq!(l.flag_cell(), Some(108));
        assert_eq!(l.end(), 109);
    }

    #[test]
    fn stacked_layouts_do_not_overlap() {
        let a = KkLayout::at_base(2, 3, 0, true);
        let b = KkLayout::at_base(2, 5, a.end(), true);
        assert_eq!(b.base(), a.end());
        assert!(b.next_cell(1) >= a.end());
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_m_rejected() {
        KkLayout::contiguous(0, 3, false);
    }

    #[test]
    fn interleaved_done_is_a_bijection_on_the_same_range() {
        let row = KkLayout::at_base(3, 5, 7, true);
        let soa = row.with_interleaved_done();
        assert!(soa.interleaved_done() && !row.interleaved_done());
        assert_eq!(soa.cells(), row.cells());
        assert_eq!(soa.end(), row.end());
        assert_eq!(soa.flag_cell(), row.flag_cell());
        for q in 1..=3 {
            assert_eq!(soa.next_cell(q), row.next_cell(q), "next region unchanged");
        }
        let mut seen = std::collections::HashSet::new();
        for q in 1..=3 {
            for pos in 1..=5u64 {
                let cell = soa.done_cell(q, pos);
                assert!(seen.insert(cell), "cell reused");
                assert!(cell >= 7 + 3 && cell < soa.flag_cell().unwrap());
            }
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn interleaved_done_clusters_equal_positions() {
        let soa = KkLayout::contiguous(4, 100, false).with_interleaved_done();
        // All four processes' pos-10 slots are adjacent cells.
        let cells: Vec<usize> = (1..=4).map(|q| soa.done_cell(q, 10)).collect();
        assert_eq!(
            cells,
            vec![cells[0], cells[0] + 1, cells[0] + 2, cells[0] + 3]
        );
    }

    #[test]
    fn zero_universe_layout() {
        // A stage whose universe collapsed to nothing still has next cells.
        let l = KkLayout::contiguous(2, 0, true);
        assert_eq!(l.cells(), 3);
        assert_eq!(l.flag_cell(), Some(2));
    }
}
