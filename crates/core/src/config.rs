use std::error::Error;
use std::fmt;

/// Problem-instance parameters for KKβ: `n` jobs, `m` processes, and the
/// termination parameter `β`.
///
/// Invariants enforced at construction (paper §3):
///
/// * `n ≥ m ≥ 1` — at least as many jobs as processes (§2.2);
/// * `β ≥ m` — required for *termination* (wait-freedom). Correctness
///   (at-most-once) would hold for smaller `β`, but a process could then
///   run forever, so such configurations are rejected.
///
/// # Examples
///
/// ```
/// use amo_core::KkConfig;
///
/// let c = KkConfig::new(1_000, 8)?; // β defaults to m (best effectiveness)
/// assert_eq!(c.beta(), 8);
/// assert_eq!(c.effectiveness_bound(), 1_000 - (8 + 8 - 2));
///
/// let w = KkConfig::with_beta(1_000, 8, KkConfig::work_optimal_beta(8))?;
/// assert_eq!(w.beta(), 3 * 64); // β = 3m² enables the O(nm log n log m) work bound
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KkConfig {
    n: usize,
    m: usize,
    beta: u64,
}

/// Rejected [`KkConfig`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `m` was zero.
    NoProcesses,
    /// `n < m`: fewer jobs than processes.
    FewerJobsThanProcesses {
        /// Requested job count.
        n: usize,
        /// Requested process count.
        m: usize,
    },
    /// `β < m`: termination cannot be guaranteed (§3).
    BetaTooSmall {
        /// Requested termination parameter.
        beta: u64,
        /// Requested process count.
        m: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoProcesses => write!(f, "at least one process is required"),
            ConfigError::FewerJobsThanProcesses { n, m } => {
                write!(f, "need n >= m jobs, got n = {n} < m = {m}")
            }
            ConfigError::BetaTooSmall { beta, m } => {
                write!(
                    f,
                    "termination requires beta >= m, got beta = {beta} < m = {m}"
                )
            }
        }
    }
}

impl Error for ConfigError {}

impl KkConfig {
    /// Configuration with `β = m`, the effectiveness-optimal choice
    /// (effectiveness `n − 2m + 2`, Theorem 4.4 with `β = m`).
    ///
    /// # Errors
    ///
    /// Returns an error if `m == 0` or `n < m`.
    pub fn new(n: usize, m: usize) -> Result<Self, ConfigError> {
        Self::with_beta(n, m, m as u64)
    }

    /// Configuration with an explicit termination parameter `β`.
    ///
    /// # Errors
    ///
    /// Returns an error if `m == 0`, `n < m`, or `β < m`.
    pub fn with_beta(n: usize, m: usize, beta: u64) -> Result<Self, ConfigError> {
        if m == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if n < m {
            return Err(ConfigError::FewerJobsThanProcesses { n, m });
        }
        if beta < m as u64 {
            return Err(ConfigError::BetaTooSmall { beta, m });
        }
        Ok(Self { n, m, beta })
    }

    /// Number of jobs `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of processes `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Termination parameter `β`.
    pub fn beta(&self) -> u64 {
        self.beta
    }

    /// The `β = 3m²` setting under which Theorem 5.6 bounds work by
    /// `O(n·m·log n·log m)`.
    pub fn work_optimal_beta(m: usize) -> u64 {
        3 * (m as u64) * (m as u64)
    }

    /// Theorem 4.4: worst-case effectiveness `n − (β + m − 2)` of KKβ
    /// (saturating at zero).
    pub fn effectiveness_bound(&self) -> u64 {
        (self.n as u64).saturating_sub(self.beta + self.m as u64 - 2)
    }

    /// Theorem 2.1: the `n − f` upper bound on the effectiveness of *any*
    /// at-most-once algorithm under `f` crashes.
    pub fn effectiveness_upper_bound(&self, f: usize) -> u64 {
        (self.n as u64).saturating_sub(f as u64)
    }

    /// The Theorem 5.6 work envelope `n·m·log₂n·log₂m` (unit constant),
    /// against which measured work is normalised in experiment E3.
    ///
    /// Logarithms are clamped to at least 1 so the envelope is meaningful
    /// for tiny instances.
    pub fn work_envelope(&self) -> f64 {
        let n = self.n as f64;
        let m = self.m as f64;
        n * m * n.log2().max(1.0) * m.log2().max(1.0)
    }

    /// Effectiveness of the trivial static-split algorithm,
    /// `(m − f)·(n / m)` (§2.2), for comparison tables.
    pub fn trivial_split_effectiveness(&self, f: usize) -> u64 {
        ((self.m - f.min(self.m)) as u64) * (self.n as u64 / self.m as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_beta_is_m() {
        let c = KkConfig::new(10, 3).unwrap();
        assert_eq!((c.n(), c.m(), c.beta()), (10, 3, 3));
    }

    #[test]
    fn zero_processes_rejected() {
        assert_eq!(KkConfig::new(10, 0), Err(ConfigError::NoProcesses));
    }

    #[test]
    fn fewer_jobs_than_processes_rejected() {
        assert_eq!(
            KkConfig::new(2, 5),
            Err(ConfigError::FewerJobsThanProcesses { n: 2, m: 5 })
        );
    }

    #[test]
    fn small_beta_rejected() {
        assert_eq!(
            KkConfig::with_beta(10, 4, 3),
            Err(ConfigError::BetaTooSmall { beta: 3, m: 4 })
        );
    }

    #[test]
    fn effectiveness_bound_matches_theorem_4_4() {
        // E(n, m, f) = n − (β + m − 2)
        let c = KkConfig::with_beta(100, 5, 5).unwrap();
        assert_eq!(c.effectiveness_bound(), 100 - (5 + 5 - 2));
        let c = KkConfig::with_beta(100, 5, 75).unwrap();
        assert_eq!(c.effectiveness_bound(), 100 - (75 + 5 - 2));
    }

    #[test]
    fn effectiveness_bound_saturates() {
        let c = KkConfig::with_beta(10, 5, 10).unwrap();
        // n − (β + m − 2) = 10 − 13 < 0 → 0
        assert_eq!(c.effectiveness_bound(), 0);
    }

    #[test]
    fn upper_bound_is_n_minus_f() {
        let c = KkConfig::new(50, 4).unwrap();
        assert_eq!(c.effectiveness_upper_bound(0), 50);
        assert_eq!(c.effectiveness_upper_bound(3), 47);
    }

    #[test]
    fn work_optimal_beta_is_3m_squared() {
        assert_eq!(KkConfig::work_optimal_beta(1), 3);
        assert_eq!(KkConfig::work_optimal_beta(4), 48);
        assert_eq!(KkConfig::work_optimal_beta(10), 300);
    }

    #[test]
    fn trivial_split_formula() {
        let c = KkConfig::new(100, 4).unwrap();
        assert_eq!(c.trivial_split_effectiveness(0), 100);
        assert_eq!(c.trivial_split_effectiveness(1), 75);
        assert_eq!(c.trivial_split_effectiveness(4), 0);
        assert_eq!(c.trivial_split_effectiveness(99), 0, "f clamps at m");
    }

    #[test]
    fn error_display_is_informative() {
        let e = KkConfig::new(2, 5).unwrap_err();
        assert!(e.to_string().contains("n = 2"));
        let e = KkConfig::with_beta(10, 4, 1).unwrap_err();
        assert!(e.to_string().contains("beta = 1"));
    }

    #[test]
    fn work_envelope_positive_and_monotone() {
        let small = KkConfig::new(64, 2).unwrap().work_envelope();
        let big = KkConfig::new(1024, 2).unwrap().work_envelope();
        assert!(small > 0.0);
        assert!(big > small);
    }

    #[test]
    fn single_process_config_valid() {
        let c = KkConfig::new(5, 1).unwrap();
        assert_eq!(c.beta(), 1);
        // n − (1 + 1 − 2) = n: a lone process performs everything.
        assert_eq!(c.effectiveness_bound(), 5);
    }
}
