//! Convenience runners: build a KKβ fleet, execute it (simulated or on
//! threads), and summarise the outcome as an [`AmoReport`].

use amo_sim::thread::{run_threads as sim_run_threads, ThreadOptions};
use amo_sim::{
    AtomicRegisters, BlockScheduler, CrashPlan, Engine, EngineLimits, JobSpan, MemOrder, MemWork,
    RandomScheduler, RoundRobin, Scheduler, VecRegisters, Violation, WithCrashes,
};

use crate::adversary::{LockstepScheduler, StalenessAdversary, StuckAnnouncementAdversary};
use crate::config::KkConfig;
use crate::kk::KkProcess;
use crate::layout::KkLayout;
use crate::stats::CollisionMatrix;

/// Scheduling strategy selector for [`run_simulated`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Fair round-robin.
    #[default]
    RoundRobin,
    /// Seeded uniform-random.
    Random(
        /// RNG seed.
        u64,
    ),
    /// Seeded bursty schedule with the given burst length.
    Block(
        /// RNG seed.
        u64,
        /// Actions per burst.
        u64,
    ),
    /// Collision-maximising lockstep ([`LockstepScheduler`]).
    Lockstep,
    /// The Theorem 4.4 lower-bound adversary
    /// ([`StuckAnnouncementAdversary`]).
    StuckAnnouncement,
    /// The Lemma 5.5 collision-forcing adversary ([`StalenessAdversary`]).
    Staleness,
}

/// Options for a simulated run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Deterministic crash injection (combined with the scheduler through
    /// [`WithCrashes`]). Ignored by [`SchedulerKind::StuckAnnouncement`],
    /// which crashes processes itself.
    pub crash_plan: CrashPlan,
    /// Step cap (defaults to [`EngineLimits::default`]'s 200M actions;
    /// override with [`with_max_steps`](Self::with_max_steps)).
    pub limits: EngineLimits,
    /// Enable per-pair collision counting (costs memory and time).
    pub track_collisions: bool,
    /// Actions granted per scheduler turn for [`SchedulerKind::RoundRobin`]
    /// (ignored by the other kinds: blocks carry their own burst quantum and
    /// the adversaries stay single-step by contract). `> 1` opts into the
    /// engine's macro-stepping fast path via a quantized — still fair —
    /// round-robin.
    pub quantum: u64,
    /// Forces the engine's per-action reference path even when the
    /// scheduler grants quanta (see [`amo_sim::Engine::single_step`]); used
    /// by the batching-equivalence tests and for debugging.
    pub reference_single_step: bool,
    /// Enables the announcement-epoch cache on the fleet (see
    /// [`KkProcess::set_epoch_cache`]). Defaults to `true`; it takes effect
    /// only for schedulers that grant quanta (quantized round-robin, block
    /// bursts) — under single-action granularity the cache can skip no load
    /// by design, so it is left off to keep the per-action path lean.
    pub epoch_cache: bool,
    /// Lays the fleet's `done` logs out position-major (struct of arrays;
    /// see [`KkLayout::with_interleaved_done`]) so `gatherDone` sweeps read
    /// adjacent cells. Off by default — the seed-shaped row-major layout —
    /// and enabled by [`round_robin_batched`](Self::round_robin_batched),
    /// the fast-path configuration.
    pub interleaved_done: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            scheduler: SchedulerKind::default(),
            crash_plan: CrashPlan::default(),
            limits: EngineLimits::default(),
            track_collisions: false,
            quantum: 1,
            reference_single_step: false,
            epoch_cache: true,
            interleaved_done: false,
        }
    }
}

impl SimOptions {
    /// Round-robin, no crashes.
    pub fn round_robin() -> Self {
        Self::default()
    }

    /// Quantized round-robin with [`RoundRobin::BATCH_QUANTUM`] actions per
    /// turn — the macro-stepping fast path, with the announcement-epoch
    /// cache and the interleaved (struct-of-arrays) `done` layout. Fair, but
    /// a *different* interleaving than strict alternation.
    pub fn round_robin_batched() -> Self {
        Self {
            quantum: RoundRobin::BATCH_QUANTUM,
            interleaved_done: true,
            ..Self::default()
        }
    }

    /// Enables or disables the announcement-epoch cache (see
    /// [`Self::epoch_cache`]).
    pub fn with_epoch_cache(mut self, enabled: bool) -> Self {
        self.epoch_cache = enabled;
        self
    }

    /// Enables or disables the interleaved `done` layout (see
    /// [`Self::interleaved_done`]).
    pub fn with_interleaved_done(mut self, enabled: bool) -> Self {
        self.interleaved_done = enabled;
        self
    }

    /// `true` when the configured scheduler grants quanta, i.e. the engine
    /// will drive processes through `step_many` and the epoch cache can
    /// actually skip work.
    fn grants_quanta(&self) -> bool {
        self.quantum > 1 || matches!(self.scheduler, SchedulerKind::Block(..))
    }

    /// Seeded random schedule, no crashes.
    pub fn random(seed: u64) -> Self {
        Self {
            scheduler: SchedulerKind::Random(seed),
            ..Self::default()
        }
    }

    /// Bursty schedule.
    pub fn block(seed: u64, burst: u64) -> Self {
        Self {
            scheduler: SchedulerKind::Block(seed, burst),
            ..Self::default()
        }
    }

    /// Collision-maximising lockstep.
    pub fn lockstep() -> Self {
        Self {
            scheduler: SchedulerKind::Lockstep,
            ..Self::default()
        }
    }

    /// The Theorem 4.4 adversary.
    pub fn stuck_announcement() -> Self {
        Self {
            scheduler: SchedulerKind::StuckAnnouncement,
            ..Self::default()
        }
    }

    /// The Lemma 5.5 collision-forcing adversary.
    pub fn staleness() -> Self {
        Self {
            scheduler: SchedulerKind::Staleness,
            ..Self::default()
        }
    }

    /// Adds a crash plan.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Enables collision tracking.
    pub fn with_collision_tracking(mut self) -> Self {
        self.track_collisions = true;
        self
    }

    /// Sets the round-robin quantum (see [`Self::quantum`]).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Replaces the engine step cap.
    pub fn with_limits(mut self, limits: EngineLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Caps the execution at `max_steps` total actions (shorthand for
    /// [`with_limits`](Self::with_limits)).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.limits = EngineLimits::with_max_steps(max_steps);
        self
    }

    /// Forces the per-action reference engine path (see
    /// [`Self::reference_single_step`]).
    pub fn single_step(mut self) -> Self {
        self.reference_single_step = true;
        self
    }
}

/// Options for a threaded run.
#[derive(Debug, Clone, Default)]
pub struct ThreadRunOptions {
    /// Crash injection (per-thread step budgets).
    pub crash_plan: CrashPlan,
    /// Memory-ordering regime (SeqCst is the verified default).
    pub order: MemOrder,
    /// Wait-freedom watchdog per process.
    pub max_steps_per_proc: Option<u64>,
}

/// Summary of one at-most-once execution, simulated or threaded.
#[derive(Debug, Clone)]
pub struct AmoReport {
    /// `Do(α)`: distinct jobs performed (Definition 2.1).
    pub effectiveness: u64,
    /// At-most-once violations (empty iff Definition 2.2 holds).
    pub violations: Vec<Violation>,
    /// Every `do` as `(pid, span)`.
    pub performed: Vec<(usize, JobSpan)>,
    /// Crashed pids.
    pub crashed: Vec<usize>,
    /// `true` when every surviving process terminated within limits
    /// (wait-freedom observed).
    pub completed: bool,
    /// Shared-memory traffic.
    pub mem_work: MemWork,
    /// Local basic operations (set-structure iterations etc.).
    pub local_work: u64,
    /// Total actions (simulated runs) or summed per-thread actions.
    pub total_steps: u64,
    /// Peak bytes of tracked-prefix epoch storage the register file ever
    /// held (see [`amo_sim::VecRegisters::epoch_mem_bytes`]); `0` for
    /// threaded runs and for runs with epoch tracking off.
    pub epoch_mem_bytes: u64,
    /// Pairwise collision counts, when tracking was enabled.
    pub collisions: Option<CollisionMatrix>,
    /// Which scheduler produced this run (for table labelling).
    pub scheduler_label: &'static str,
}

impl AmoReport {
    /// Total work: shared traffic plus local basic operations
    /// (Definition 2.5).
    pub fn work(&self) -> u64 {
        self.mem_work.total() + self.local_work
    }
}

impl std::fmt::Display for AmoReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "at-most-once report ({} schedule)", self.scheduler_label)?;
        writeln!(f, "  effectiveness : {} distinct jobs", self.effectiveness)?;
        writeln!(
            f,
            "  safety        : {} violation(s)",
            self.violations.len()
        )?;
        writeln!(
            f,
            "  crashes       : {:?} ({} of the fleet)",
            self.crashed,
            self.crashed.len()
        )?;
        writeln!(
            f,
            "  work          : {} shared + {} local = {}",
            self.mem_work.total(),
            self.local_work,
            self.work()
        )?;
        write!(
            f,
            "  termination   : {}",
            if self.completed {
                "all survivors terminated"
            } else {
                "step cap hit"
            }
        )
    }
}

/// Builds the layout and the `m` KKβ automatons for a config.
pub fn kk_fleet(config: &KkConfig, track_collisions: bool) -> (KkLayout, Vec<KkProcess>) {
    kk_fleet_with(config, track_collisions, false)
}

/// [`kk_fleet`] with the `done`-layout choice exposed: `interleaved_done`
/// selects the position-major (struct-of-arrays) log order of
/// [`KkLayout::with_interleaved_done`].
pub fn kk_fleet_with(
    config: &KkConfig,
    track_collisions: bool,
    interleaved_done: bool,
) -> (KkLayout, Vec<KkProcess>) {
    let mut layout = KkLayout::contiguous(config.m(), config.n(), false);
    if interleaved_done {
        layout = layout.with_interleaved_done();
    }
    let fleet = (1..=config.m())
        .map(|pid| {
            let p = KkProcess::from_config(pid, config, layout);
            if track_collisions {
                p.with_collision_tracking()
            } else {
                p
            }
        })
        .collect();
    (layout, fleet)
}

fn finish_sim(
    exec: amo_sim::Execution,
    fleet_collisions: Option<CollisionMatrix>,
    label: &'static str,
    epoch_mem_bytes: u64,
) -> AmoReport {
    let (effectiveness, violations) = exec.summary();
    AmoReport {
        effectiveness,
        violations,
        performed: exec.performed.iter().map(|r| (r.pid, r.span)).collect(),
        crashed: exec.crashed.clone(),
        completed: exec.completed,
        mem_work: exec.mem_work,
        local_work: exec.local_work,
        total_steps: exec.total_steps,
        epoch_mem_bytes,
        collisions: fleet_collisions,
        scheduler_label: label,
    }
}

/// Runs KKβ in the deterministic simulator.
///
/// # Examples
///
/// ```
/// use amo_core::{run_simulated, KkConfig, SimOptions};
///
/// let config = KkConfig::new(64, 4)?;
/// let report = run_simulated(&config, SimOptions::round_robin());
/// assert!(report.violations.is_empty());
/// assert!(report.effectiveness >= config.effectiveness_bound());
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
pub fn run_simulated(config: &KkConfig, options: SimOptions) -> AmoReport {
    let (layout, fleet) = kk_fleet_with(config, options.track_collisions, options.interleaved_done);
    let mem = VecRegisters::new(layout.cells());
    run_fleet_simulated(mem, fleet, config.n(), options)
}

/// [`run_simulated`] drawing the register file from a [`FleetArena`]
/// (`crate::arena`): the buffer of the previous simulation is reused warm
/// instead of freshly allocated, which is the arena's multi-fleet locality
/// win for the experiment grids.
pub fn run_simulated_in(
    arena: &mut crate::arena::FleetArena,
    config: &KkConfig,
    options: SimOptions,
) -> AmoReport {
    let (layout, fleet) = kk_fleet_with(config, options.track_collisions, options.interleaved_done);
    let mem = arena.lease(layout.cells());
    let (report, mem) = run_fleet_simulated_full(mem, fleet, config.n(), options);
    arena.reclaim(mem);
    report
}

/// Runs an arbitrary pre-built KKβ fleet in the simulator (used by the
/// iterated algorithms and the ablations).
pub fn run_fleet_simulated(
    mem: VecRegisters,
    fleet: Vec<KkProcess>,
    n: usize,
    options: SimOptions,
) -> AmoReport {
    run_fleet_simulated_full(mem, fleet, n, options).0
}

/// [`run_fleet_simulated`], additionally handing the register file back so
/// arenas can recycle it.
fn run_fleet_simulated_full(
    mem: VecRegisters,
    mut fleet: Vec<KkProcess>,
    n: usize,
    options: SimOptions,
) -> (AmoReport, VecRegisters) {
    let cache = options.epoch_cache && options.grants_quanta();
    if cache {
        for p in &mut fleet {
            p.set_epoch_cache(true);
        }
    }
    // Without the cache no process consults epochs, so maintenance (and the
    // tracked-prefix storage) is switched off entirely.
    mem.set_epoch_tracking(cache);
    let track = options.track_collisions;
    let label = scheduler_label(options.scheduler);
    macro_rules! go {
        ($sched:expr) => {{
            let sched = WithCrashes::new($sched, options.crash_plan.clone());
            run_and_drain(
                mem,
                fleet,
                sched,
                options.limits,
                options.reference_single_step,
                n,
                track,
                label,
            )
        }};
    }
    match options.scheduler {
        SchedulerKind::RoundRobin => go!(RoundRobin::new().with_quantum(options.quantum.max(1))),
        SchedulerKind::Random(seed) => go!(RandomScheduler::new(seed)),
        SchedulerKind::Block(seed, burst) => go!(BlockScheduler::new(seed, burst)),
        SchedulerKind::Lockstep => go!(LockstepScheduler::new()),
        SchedulerKind::StuckAnnouncement => go!(StuckAnnouncementAdversary::new()),
        SchedulerKind::Staleness => go!(StalenessAdversary::new()),
    }
}

fn scheduler_label(kind: SchedulerKind) -> &'static str {
    match kind {
        SchedulerKind::RoundRobin => "round-robin",
        SchedulerKind::Random(_) => "random",
        SchedulerKind::Block(..) => "block",
        SchedulerKind::Lockstep => "lockstep",
        SchedulerKind::StuckAnnouncement => "stuck-announcement",
        SchedulerKind::Staleness => "staleness",
    }
}

#[allow(clippy::too_many_arguments)]
fn run_and_drain<S: Scheduler<KkProcess>>(
    mem: VecRegisters,
    fleet: Vec<KkProcess>,
    scheduler: S,
    limits: EngineLimits,
    reference_single_step: bool,
    n: usize,
    track: bool,
    label: &'static str,
) -> (AmoReport, VecRegisters) {
    let mut engine = Engine::new(mem, fleet, scheduler);
    if reference_single_step {
        engine = engine.single_step();
    }
    let (exec, slots, mem) = engine.run_full(limits);
    let collisions = track.then(|| {
        let rows = slots
            .iter()
            .map(|s| s.process.collisions_with().to_vec())
            .collect();
        CollisionMatrix::new(rows, n)
    });
    let epoch_mem = mem.epoch_mem_bytes();
    (finish_sim(exec, collisions, label, epoch_mem), mem)
}

/// Runs KKβ on OS threads over hardware atomics.
///
/// # Examples
///
/// ```
/// use amo_core::{run_threads, KkConfig, ThreadRunOptions};
///
/// let config = KkConfig::new(128, 4)?;
/// let report = run_threads(&config, ThreadRunOptions::default());
/// assert!(report.violations.is_empty());
/// assert!(report.effectiveness >= config.effectiveness_bound());
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
pub fn run_threads(config: &KkConfig, options: ThreadRunOptions) -> AmoReport {
    let (layout, fleet) = kk_fleet(config, false);
    let mem = AtomicRegisters::new(layout.cells(), options.order);
    let exec = sim_run_threads(
        &mem,
        fleet,
        ThreadOptions {
            crash_plan: options.crash_plan,
            max_steps_per_proc: options.max_steps_per_proc,
        },
    );
    let (effectiveness, violations) =
        amo_sim::perform_summary(exec.performed.iter().map(|r| r.span));
    AmoReport {
        effectiveness,
        violations,
        performed: exec.performed.iter().map(|r| (r.pid, r.span)).collect(),
        crashed: exec.crashed.clone(),
        completed: exec.completed,
        mem_work: exec.mem_work,
        local_work: exec.local_work,
        total_steps: exec.per_proc_steps.iter().sum(),
        epoch_mem_bytes: 0,
        collisions: None,
        scheduler_label: "threads",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_no_crash_performs_nearly_everything() {
        let config = KkConfig::new(60, 3).unwrap();
        let report = run_simulated(&config, SimOptions::round_robin());
        assert!(report.violations.is_empty());
        assert!(report.completed);
        assert!(report.effectiveness >= config.effectiveness_bound());
        assert!(report.effectiveness <= 60);
    }

    #[test]
    fn crash_plan_is_respected() {
        let config = KkConfig::new(40, 4).unwrap();
        let options = SimOptions::round_robin()
            .with_crash_plan(CrashPlan::at_steps([(1usize, 5u64), (2, 9)]));
        let report = run_simulated(&config, options);
        assert_eq!(report.crashed, vec![1, 2]);
        assert!(report.violations.is_empty());
        assert!(report.effectiveness >= config.effectiveness_bound());
    }

    #[test]
    fn collision_tracking_produces_matrix() {
        let config = KkConfig::new(50, 4).unwrap();
        let report = run_simulated(&config, SimOptions::lockstep().with_collision_tracking());
        let m = report.collisions.expect("matrix present");
        assert_eq!(m.m(), 4);
    }

    #[test]
    fn threads_respect_effectiveness_bound() {
        let config = KkConfig::new(120, 4).unwrap();
        let report = run_threads(&config, ThreadRunOptions::default());
        assert!(report.violations.is_empty());
        assert!(report.completed);
        assert!(report.effectiveness >= config.effectiveness_bound());
    }

    #[test]
    fn threads_with_crashes_stay_safe() {
        let config = KkConfig::new(80, 4).unwrap();
        let options = ThreadRunOptions {
            crash_plan: CrashPlan::at_steps([(1usize, 30u64), (2, 60)]),
            ..ThreadRunOptions::default()
        };
        let report = run_threads(&config, options);
        assert!(report.violations.is_empty());
        assert_eq!(report.crashed, vec![1, 2]);
    }

    #[test]
    fn report_display_is_informative() {
        let config = KkConfig::new(20, 2).unwrap();
        let report = run_simulated(&config, SimOptions::round_robin());
        let text = report.to_string();
        assert!(text.contains("effectiveness"));
        assert!(text.contains("0 violation(s)"));
        assert!(text.contains("round-robin"));
        assert!(text.contains("all survivors terminated"));
    }

    #[test]
    fn work_is_mem_plus_local() {
        let config = KkConfig::new(30, 2).unwrap();
        let report = run_simulated(&config, SimOptions::round_robin());
        assert_eq!(report.work(), report.mem_work.total() + report.local_work);
        assert!(report.local_work > 0, "set structures counted");
    }
}
