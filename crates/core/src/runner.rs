//! Convenience runners: build a KKβ fleet, execute it (simulated or on
//! threads), and summarise the outcome as an [`AmoReport`].
//!
//! Every simulated entry point routes through the unified scenario layer
//! ([`amo_sim::run_scenario`]): the legacy [`SimOptions`] survives as a
//! converting adapter whose [`to_scenario`](SimOptions::to_scenario)
//! lowering is **bit-identical** (deterministic counters and `local_work`
//! included — asserted by the cross-crate scenario-equivalence suite), and
//! [`run_scenario_simulated`] exposes the spec-first form directly.

use amo_sim::thread::ThreadSpec;
use amo_sim::{
    run_scenario, CrashPlan, EngineLimits, Execution, JobSpan, MemOrder, MemWork, RoundRobin,
    ScenarioSpec, SchedulerSpec, ShardSpec, Slot, VecRegisters, Violation,
};

use crate::config::KkConfig;
use crate::kk::KkProcess;
use crate::layout::KkLayout;
use crate::stats::CollisionMatrix;

/// Scheduling strategy selector for [`run_simulated`].
///
/// This is the legacy KKβ-specific selector, kept as a converting adapter:
/// [`lower`](SchedulerKind::lower) maps it onto the shared
/// [`SchedulerSpec`], with the three paper adversaries going through the
/// scenario layer's named-adversary registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Fair round-robin.
    #[default]
    RoundRobin,
    /// Seeded uniform-random.
    Random(
        /// RNG seed.
        u64,
    ),
    /// Seeded bursty schedule with the given burst length.
    Block(
        /// RNG seed.
        u64,
        /// Actions per burst.
        u64,
    ),
    /// Collision-maximising lockstep ([`LockstepScheduler`]).
    ///
    /// [`LockstepScheduler`]: crate::LockstepScheduler
    Lockstep,
    /// The Theorem 4.4 lower-bound adversary
    /// ([`StuckAnnouncementAdversary`]).
    ///
    /// [`StuckAnnouncementAdversary`]: crate::StuckAnnouncementAdversary
    StuckAnnouncement,
    /// The Lemma 5.5 collision-forcing adversary ([`StalenessAdversary`]).
    ///
    /// [`StalenessAdversary`]: crate::StalenessAdversary
    Staleness,
}

impl SchedulerKind {
    /// Lowers this legacy selector onto the shared [`SchedulerSpec`]: the
    /// fair kinds map structurally, the adversaries by registry name
    /// (resolved by `KkProcess`'s
    /// [`ScenarioProcess`](amo_sim::ScenarioProcess) impl).
    pub fn lower(self) -> SchedulerSpec {
        match self {
            SchedulerKind::RoundRobin => SchedulerSpec::RoundRobin,
            SchedulerKind::Random(seed) => SchedulerSpec::Random(seed),
            SchedulerKind::Block(seed, burst) => SchedulerSpec::Block(seed, burst),
            SchedulerKind::Lockstep => SchedulerSpec::Adversary("lockstep"),
            SchedulerKind::StuckAnnouncement => SchedulerSpec::Adversary("stuck-announcement"),
            SchedulerKind::Staleness => SchedulerSpec::Adversary("staleness"),
        }
    }
}

/// Options for a simulated run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Deterministic crash injection (combined with the scheduler through
    /// [`WithCrashes`]). Ignored by [`SchedulerKind::StuckAnnouncement`],
    /// which crashes processes itself.
    pub crash_plan: CrashPlan,
    /// Step cap (defaults to [`EngineLimits::default`]'s 200M actions;
    /// override with [`with_max_steps`](Self::with_max_steps)).
    pub limits: EngineLimits,
    /// Enable per-pair collision counting (costs memory and time).
    pub track_collisions: bool,
    /// Actions granted per scheduler turn for [`SchedulerKind::RoundRobin`]
    /// (ignored by the other kinds: blocks carry their own burst quantum and
    /// the adversaries stay single-step by contract). `> 1` opts into the
    /// engine's macro-stepping fast path via a quantized — still fair —
    /// round-robin.
    pub quantum: u64,
    /// Forces the engine's per-action reference path even when the
    /// scheduler grants quanta (see [`amo_sim::Engine::single_step`]); used
    /// by the batching-equivalence tests and for debugging.
    pub reference_single_step: bool,
    /// Enables the announcement-epoch cache on the fleet (see
    /// [`KkProcess::set_epoch_cache`]). Defaults to `true`; it takes effect
    /// only for schedulers that grant quanta (quantized round-robin, block
    /// bursts) — under single-action granularity the cache can skip no load
    /// by design, so it is left off to keep the per-action path lean.
    pub epoch_cache: bool,
    /// Lays the fleet's `done` logs out position-major (struct of arrays;
    /// see [`KkLayout::with_interleaved_done`]) so `gatherDone` sweeps read
    /// adjacent cells. Off by default — the seed-shaped row-major layout —
    /// and enabled by [`round_robin_batched`](Self::round_robin_batched),
    /// the fast-path configuration.
    pub interleaved_done: bool,
    /// Shard parallelism (see [`amo_sim::ShardSpec`]); disabled by default.
    /// When enabled the scenario layer routes to the phased sharded driver
    /// — every deterministic observable stays shard- and thread-count
    /// independent.
    pub shard: ShardSpec,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            scheduler: SchedulerKind::default(),
            crash_plan: CrashPlan::default(),
            limits: EngineLimits::default(),
            track_collisions: false,
            quantum: 1,
            reference_single_step: false,
            epoch_cache: true,
            interleaved_done: false,
            shard: ShardSpec::disabled(),
        }
    }
}

impl SimOptions {
    /// Round-robin, no crashes.
    pub fn round_robin() -> Self {
        Self::default()
    }

    /// Quantized round-robin with [`RoundRobin::BATCH_QUANTUM`] actions per
    /// turn — the macro-stepping fast path, with the announcement-epoch
    /// cache and the interleaved (struct-of-arrays) `done` layout. Fair, but
    /// a *different* interleaving than strict alternation.
    pub fn round_robin_batched() -> Self {
        Self {
            quantum: RoundRobin::BATCH_QUANTUM,
            interleaved_done: true,
            ..Self::default()
        }
    }

    /// Enables or disables the announcement-epoch cache (see
    /// [`Self::epoch_cache`]).
    pub fn with_epoch_cache(mut self, enabled: bool) -> Self {
        self.epoch_cache = enabled;
        self
    }

    /// Enables or disables the interleaved `done` layout (see
    /// [`Self::interleaved_done`]).
    pub fn with_interleaved_done(mut self, enabled: bool) -> Self {
        self.interleaved_done = enabled;
        self
    }

    /// `true` when the configured scheduler grants quanta, i.e. the engine
    /// will drive processes through `step_many` and the epoch cache can
    /// actually skip work.
    ///
    /// Follows the documented [`quantum`](Self::quantum) semantics: the
    /// field applies to [`SchedulerKind::RoundRobin`] only, so a
    /// `quantum > 1` left on any other kind grants nothing. (Historically
    /// this predicate ignored the kind, which switched the epoch cache —
    /// and its tracked-prefix storage — on for single-step schedules where
    /// it could never skip a read; the lowering through
    /// [`to_scenario`](Self::to_scenario) made the two agree.)
    pub fn grants_quanta(&self) -> bool {
        (self.quantum > 1 && matches!(self.scheduler, SchedulerKind::RoundRobin))
            || matches!(self.scheduler, SchedulerKind::Block(..))
    }

    /// Seeded random schedule, no crashes.
    pub fn random(seed: u64) -> Self {
        Self {
            scheduler: SchedulerKind::Random(seed),
            ..Self::default()
        }
    }

    /// Bursty schedule.
    pub fn block(seed: u64, burst: u64) -> Self {
        Self {
            scheduler: SchedulerKind::Block(seed, burst),
            ..Self::default()
        }
    }

    /// Collision-maximising lockstep.
    pub fn lockstep() -> Self {
        Self {
            scheduler: SchedulerKind::Lockstep,
            ..Self::default()
        }
    }

    /// The Theorem 4.4 adversary.
    pub fn stuck_announcement() -> Self {
        Self {
            scheduler: SchedulerKind::StuckAnnouncement,
            ..Self::default()
        }
    }

    /// The Lemma 5.5 collision-forcing adversary.
    pub fn staleness() -> Self {
        Self {
            scheduler: SchedulerKind::Staleness,
            ..Self::default()
        }
    }

    /// Adds a crash plan.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Enables collision tracking.
    pub fn with_collision_tracking(mut self) -> Self {
        self.track_collisions = true;
        self
    }

    /// Sets the round-robin quantum (see [`Self::quantum`]).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Replaces the engine step cap.
    pub fn with_limits(mut self, limits: EngineLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Caps the execution at `max_steps` total actions (shorthand for
    /// [`with_limits`](Self::with_limits)).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.limits = EngineLimits::with_max_steps(max_steps);
        self
    }

    /// Forces the per-action reference engine path (see
    /// [`Self::reference_single_step`]).
    pub fn single_step(mut self) -> Self {
        self.reference_single_step = true;
        self
    }

    /// Replaces the shard-parallelism configuration (see [`Self::shard`]).
    pub fn with_shard_spec(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Lowers these options into the shared [`ScenarioSpec`] — the
    /// converting adapter the legacy runners are now thin shims over.
    ///
    /// The lowering preserves the legacy semantics exactly: in particular
    /// [`quantum`](Self::quantum) historically applied only to
    /// [`SchedulerKind::RoundRobin`] (blocks carry their own burst quantum,
    /// adversaries are single-step by contract), so it is pinned to `1` for
    /// every other kind rather than handed to the spec's
    /// scheduler-agnostic quantum. Spec-first callers who *want* the newly
    /// expressible cells (e.g. a quantized random schedule) build a
    /// [`ScenarioSpec`] directly.
    pub fn to_scenario(&self) -> ScenarioSpec {
        ScenarioSpec {
            scheduler: self.scheduler.lower(),
            crash_plan: self.crash_plan.clone(),
            limits: self.limits,
            quantum: match self.scheduler {
                SchedulerKind::RoundRobin => self.quantum,
                _ => 1,
            },
            epoch_cache: self.epoch_cache,
            reference_single_step: self.reference_single_step,
            backend: Default::default(),
            collisions: self.track_collisions,
            shard: self.shard,
        }
    }
}

/// Options for a threaded run.
///
/// Crash injection is crash-**stop** only: plans carrying
/// [`CrashPlan::restart_after`] entries are rejected loudly by
/// [`run_threads`] (the thread runtime cannot re-enter a dead OS thread);
/// restart scenarios belong to the simulated backends.
#[derive(Debug, Clone, Default)]
pub struct ThreadRunOptions {
    /// Crash injection (per-thread step budgets).
    pub crash_plan: CrashPlan,
    /// Memory-ordering regime (SeqCst is the verified default).
    pub order: MemOrder,
    /// Wait-freedom watchdog per process.
    pub max_steps_per_proc: Option<u64>,
}

impl ThreadRunOptions {
    /// Adds crash-stop injection (builder form, mirroring
    /// [`amo_sim::thread::ThreadSpec`]).
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Selects the memory-ordering regime.
    pub fn with_order(mut self, order: MemOrder) -> Self {
        self.order = order;
        self
    }

    /// Caps every process at `steps` actions (wait-freedom watchdog).
    pub fn with_watchdog(mut self, steps: u64) -> Self {
        self.max_steps_per_proc = Some(steps);
        self
    }

    /// Lowers into the sim-layer [`ThreadSpec`] these options are a
    /// KKβ-flavoured veneer over.
    pub fn to_thread_spec(&self) -> ThreadSpec {
        let spec = ThreadSpec::new()
            .with_crash_plan(self.crash_plan.clone())
            .with_order(self.order);
        match self.max_steps_per_proc {
            Some(w) => spec.with_watchdog(w),
            None => spec,
        }
    }
}

/// Summary of one at-most-once execution, simulated or threaded.
///
/// Equality is field-for-field (deterministic counters, `local_work` and
/// the collision matrix included) — what the scenario-equivalence suite
/// asserts between a legacy-options run and its lowered [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmoReport {
    /// `Do(α)`: distinct jobs performed (Definition 2.1).
    pub effectiveness: u64,
    /// At-most-once violations (empty iff Definition 2.2 holds).
    pub violations: Vec<Violation>,
    /// Every `do` as `(pid, span)`.
    pub performed: Vec<(usize, JobSpan)>,
    /// Crashed pids.
    pub crashed: Vec<usize>,
    /// Pids restarted after a crash (empty without a restart plan; always
    /// empty for threaded runs).
    pub restarted: Vec<usize>,
    /// `true` when every surviving process terminated within limits
    /// (wait-freedom observed).
    pub completed: bool,
    /// Shared-memory traffic.
    pub mem_work: MemWork,
    /// Local basic operations (set-structure iterations etc.).
    pub local_work: u64,
    /// Total actions (simulated runs) or summed per-thread actions.
    pub total_steps: u64,
    /// Peak bytes of tracked-prefix epoch storage the register file ever
    /// held (see [`amo_sim::VecRegisters::epoch_mem_bytes`]); `0` for
    /// threaded runs and for runs with epoch tracking off.
    pub epoch_mem_bytes: u64,
    /// Pairwise collision counts, when tracking was enabled.
    pub collisions: Option<CollisionMatrix>,
    /// Which scheduler produced this run (for table labelling).
    pub scheduler_label: &'static str,
}

impl AmoReport {
    /// Total work: shared traffic plus local basic operations
    /// (Definition 2.5).
    pub fn work(&self) -> u64 {
        self.mem_work.total() + self.local_work
    }
}

impl std::fmt::Display for AmoReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "at-most-once report ({} schedule)", self.scheduler_label)?;
        writeln!(f, "  effectiveness : {} distinct jobs", self.effectiveness)?;
        writeln!(
            f,
            "  safety        : {} violation(s)",
            self.violations.len()
        )?;
        writeln!(
            f,
            "  crashes       : {:?} ({} of the fleet)",
            self.crashed,
            self.crashed.len()
        )?;
        writeln!(
            f,
            "  work          : {} shared + {} local = {}",
            self.mem_work.total(),
            self.local_work,
            self.work()
        )?;
        write!(
            f,
            "  termination   : {}",
            if self.completed {
                "all survivors terminated"
            } else {
                "step cap hit"
            }
        )
    }
}

/// Builds the layout and the `m` KKβ automatons for a config.
pub fn kk_fleet(config: &KkConfig, track_collisions: bool) -> (KkLayout, Vec<KkProcess>) {
    kk_fleet_with(config, track_collisions, false)
}

/// [`kk_fleet`] with the `done`-layout choice exposed: `interleaved_done`
/// selects the position-major (struct-of-arrays) log order of
/// [`KkLayout::with_interleaved_done`].
pub fn kk_fleet_with(
    config: &KkConfig,
    track_collisions: bool,
    interleaved_done: bool,
) -> (KkLayout, Vec<KkProcess>) {
    let mut layout = KkLayout::contiguous(config.m(), config.n(), false);
    if interleaved_done {
        layout = layout.with_interleaved_done();
    }
    let fleet = (1..=config.m())
        .map(|pid| {
            let p = KkProcess::from_config(pid, config, layout);
            if track_collisions {
                p.with_collision_tracking()
            } else {
                p
            }
        })
        .collect();
    (layout, fleet)
}

fn finish_sim(
    exec: Execution,
    fleet_collisions: Option<CollisionMatrix>,
    label: &'static str,
    epoch_mem_bytes: u64,
) -> AmoReport {
    let (effectiveness, violations) = exec.summary();
    AmoReport {
        effectiveness,
        violations,
        performed: exec.performed.iter().map(|r| (r.pid, r.span)).collect(),
        crashed: exec.crashed.clone(),
        restarted: exec.restarted.clone(),
        completed: exec.completed,
        mem_work: exec.mem_work,
        local_work: exec.local_work,
        total_steps: exec.total_steps,
        epoch_mem_bytes,
        collisions: fleet_collisions,
        scheduler_label: label,
    }
}

/// Runs KKβ in the deterministic simulator.
///
/// # Examples
///
/// ```
/// use amo_core::{run_simulated, KkConfig, SimOptions};
///
/// let config = KkConfig::new(64, 4)?;
/// let report = run_simulated(&config, SimOptions::round_robin());
/// assert!(report.violations.is_empty());
/// assert!(report.effectiveness >= config.effectiveness_bound());
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
pub fn run_simulated(config: &KkConfig, options: SimOptions) -> AmoReport {
    let (layout, fleet) = kk_fleet_with(config, options.track_collisions, options.interleaved_done);
    let mem = VecRegisters::new(layout.cells());
    run_fleet_simulated(mem, fleet, config.n(), options)
}

/// [`run_simulated`] drawing the register file from a [`FleetArena`]
/// (`crate::arena`): the buffer of the previous simulation is reused warm
/// instead of freshly allocated, which is the arena's multi-fleet locality
/// win for the experiment grids.
pub fn run_simulated_in(
    arena: &mut crate::arena::FleetArena,
    config: &KkConfig,
    options: SimOptions,
) -> AmoReport {
    let (layout, fleet) = kk_fleet_with(config, options.track_collisions, options.interleaved_done);
    let mem = arena.lease(layout.cells());
    let (report, mem) = run_fleet_simulated_full(mem, fleet, config.n(), options);
    arena.reclaim(mem);
    report
}

/// Runs KKβ under an explicit [`ScenarioSpec`] — the spec-first twin of
/// [`run_simulated`], able to express every scenario-layer cell (quantized
/// random schedules, any registered adversary, …).
///
/// The fleet uses the interleaved (struct-of-arrays) `done` layout exactly
/// when the spec grants quanta, mirroring the fast-path configuration of
/// [`SimOptions::round_robin_batched`].
///
/// # Examples
///
/// ```
/// use amo_core::{run_scenario_simulated, KkConfig};
/// use amo_sim::ScenarioSpec;
///
/// let config = KkConfig::new(64, 4)?;
/// // A quantized random schedule: inexpressible through SimOptions.
/// let report = run_scenario_simulated(&config, &ScenarioSpec::random(7).with_quantum(64));
/// assert!(report.violations.is_empty());
/// assert!(report.effectiveness >= config.effectiveness_bound());
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
pub fn run_scenario_simulated(config: &KkConfig, spec: &ScenarioSpec) -> AmoReport {
    let (layout, fleet) = kk_fleet_with(config, spec.collisions, spec.grants_quanta());
    let mem = VecRegisters::new(layout.cells());
    let (exec, slots, mem) = run_scenario(mem, fleet, spec);
    report_from_scenario(config.n(), spec, exec, &slots, &mem)
}

/// [`run_scenario_simulated`] drawing the register file from a
/// [`FleetArena`].
pub fn run_scenario_simulated_in(
    arena: &mut crate::arena::FleetArena,
    config: &KkConfig,
    spec: &ScenarioSpec,
) -> AmoReport {
    let (layout, fleet) = kk_fleet_with(config, spec.collisions, spec.grants_quanta());
    let mem = arena.lease(layout.cells());
    let (exec, slots, mem) = run_scenario(mem, fleet, spec);
    let report = report_from_scenario(config.n(), spec, exec, &slots, &mem);
    arena.reclaim(mem);
    report
}

/// Runs an arbitrary pre-built KKβ fleet in the simulator (used by the
/// iterated algorithms and the ablations).
pub fn run_fleet_simulated(
    mem: VecRegisters,
    fleet: Vec<KkProcess>,
    n: usize,
    options: SimOptions,
) -> AmoReport {
    run_fleet_simulated_full(mem, fleet, n, options).0
}

/// [`run_fleet_simulated`], additionally handing the register file back so
/// arenas can recycle it. A thin shim: the options lower into a
/// [`ScenarioSpec`] and the shared [`run_scenario`] driver does the rest.
fn run_fleet_simulated_full(
    mem: VecRegisters,
    fleet: Vec<KkProcess>,
    n: usize,
    options: SimOptions,
) -> (AmoReport, VecRegisters) {
    let spec = options.to_scenario();
    let (exec, slots, mem) = run_scenario(mem, fleet, &spec);
    let report = report_from_scenario(n, &spec, exec, &slots, &mem);
    (report, mem)
}

/// Builds the [`AmoReport`] of a scenario run over a KKβ fleet, harvesting
/// the collision matrix from the terminal slots when the spec tracked it.
fn report_from_scenario(
    n: usize,
    spec: &ScenarioSpec,
    exec: Execution,
    slots: &[Slot<KkProcess>],
    mem: &VecRegisters,
) -> AmoReport {
    let collisions = spec.collisions.then(|| {
        let rows = slots
            .iter()
            .map(|s| s.process.collisions_with().to_vec())
            .collect();
        CollisionMatrix::new(rows, n)
    });
    finish_sim(exec, collisions, spec.label(), mem.epoch_mem_bytes())
}

/// Runs KKβ on OS threads over hardware atomics.
///
/// # Examples
///
/// ```
/// use amo_core::{run_threads, KkConfig, ThreadRunOptions};
///
/// let config = KkConfig::new(128, 4)?;
/// let report = run_threads(&config, ThreadRunOptions::default());
/// assert!(report.violations.is_empty());
/// assert!(report.effectiveness >= config.effectiveness_bound());
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
///
/// # Panics
///
/// Panics if the crash plan schedules restarts — real threads are
/// crash-stop only (see [`amo_sim::thread`]).
pub fn run_threads(config: &KkConfig, options: ThreadRunOptions) -> AmoReport {
    let (layout, fleet) = kk_fleet(config, false);
    let spec = options.to_thread_spec();
    let mem = spec.alloc(layout.cells());
    let exec = spec.run(&mem, fleet);
    let (effectiveness, violations) =
        amo_sim::perform_summary(exec.performed.iter().map(|r| r.span));
    AmoReport {
        effectiveness,
        violations,
        performed: exec.performed.iter().map(|r| (r.pid, r.span)).collect(),
        crashed: exec.crashed.clone(),
        restarted: Vec::new(),
        completed: exec.completed,
        mem_work: exec.mem_work,
        local_work: exec.local_work,
        total_steps: exec.per_proc_steps.iter().sum(),
        epoch_mem_bytes: 0,
        collisions: None,
        scheduler_label: "threads",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_no_crash_performs_nearly_everything() {
        let config = KkConfig::new(60, 3).unwrap();
        let report = run_simulated(&config, SimOptions::round_robin());
        assert!(report.violations.is_empty());
        assert!(report.completed);
        assert!(report.effectiveness >= config.effectiveness_bound());
        assert!(report.effectiveness <= 60);
    }

    #[test]
    fn crash_plan_is_respected() {
        let config = KkConfig::new(40, 4).unwrap();
        let options = SimOptions::round_robin()
            .with_crash_plan(CrashPlan::at_steps([(1usize, 5u64), (2, 9)]));
        let report = run_simulated(&config, options);
        assert_eq!(report.crashed, vec![1, 2]);
        assert!(report.violations.is_empty());
        assert!(report.effectiveness >= config.effectiveness_bound());
    }

    #[test]
    fn collision_tracking_produces_matrix() {
        let config = KkConfig::new(50, 4).unwrap();
        let report = run_simulated(&config, SimOptions::lockstep().with_collision_tracking());
        let m = report.collisions.expect("matrix present");
        assert_eq!(m.m(), 4);
    }

    #[test]
    fn threads_respect_effectiveness_bound() {
        let config = KkConfig::new(120, 4).unwrap();
        let report = run_threads(&config, ThreadRunOptions::default());
        assert!(report.violations.is_empty());
        assert!(report.completed);
        assert!(report.effectiveness >= config.effectiveness_bound());
    }

    #[test]
    fn threads_with_crashes_stay_safe() {
        let config = KkConfig::new(80, 4).unwrap();
        let options = ThreadRunOptions {
            crash_plan: CrashPlan::at_steps([(1usize, 30u64), (2, 60)]),
            ..ThreadRunOptions::default()
        };
        let report = run_threads(&config, options);
        assert!(report.violations.is_empty());
        assert_eq!(report.crashed, vec![1, 2]);
    }

    #[test]
    fn report_display_is_informative() {
        let config = KkConfig::new(20, 2).unwrap();
        let report = run_simulated(&config, SimOptions::round_robin());
        let text = report.to_string();
        assert!(text.contains("effectiveness"));
        assert!(text.contains("0 violation(s)"));
        assert!(text.contains("round-robin"));
        assert!(text.contains("all survivors terminated"));
    }

    #[test]
    fn work_is_mem_plus_local() {
        let config = KkConfig::new(30, 2).unwrap();
        let report = run_simulated(&config, SimOptions::round_robin());
        assert_eq!(report.work(), report.mem_work.total() + report.local_work);
        assert!(report.local_work > 0, "set structures counted");
    }
}
