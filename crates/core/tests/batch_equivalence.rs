//! Macro-stepping fast-path equivalence: batching must be observationally
//! invisible.
//!
//! For every config and every scheduler that grants quanta (quantized
//! round-robin, block bursts, either wrapped in crash injection), the
//! engine's batched path and its per-action reference path
//! ([`Engine::single_step`]) must produce **identical** [`Execution`]s:
//! same perform records (pid, span, global step index), same shared and
//! local work, same per-process step counts, same crashes, same
//! effectiveness. Adversarial schedulers (`Lockstep`, `StuckAnnouncement`,
//! `Staleness`) keep the default quantum of 1, so for them forcing
//! single-step must be a no-op.

use amo_core::{kk_fleet, run_simulated, KkConfig, SimOptions};
use amo_sim::{
    BlockScheduler, CrashPlan, Engine, EngineLimits, Execution, RoundRobin, Scheduler,
    VecRegisters, WithCrashes,
};
use proptest::prelude::*;

/// Field-by-field execution equality with a readable failure message.
fn assert_exec_eq(fast: &Execution, reference: &Execution, what: &str) {
    assert_eq!(
        fast.performed, reference.performed,
        "{what}: performed records differ"
    );
    assert_eq!(
        fast.total_steps, reference.total_steps,
        "{what}: total_steps differ"
    );
    assert_eq!(fast.crashed, reference.crashed, "{what}: crashes differ");
    assert_eq!(
        fast.completed, reference.completed,
        "{what}: completion differs"
    );
    assert_eq!(
        fast.mem_work, reference.mem_work,
        "{what}: shared work differs"
    );
    assert_eq!(
        fast.local_work, reference.local_work,
        "{what}: local work differs"
    );
    assert_eq!(
        fast.per_proc_steps, reference.per_proc_steps,
        "{what}: per-proc steps differ"
    );
    assert_eq!(
        fast.effectiveness(),
        reference.effectiveness(),
        "{what}: effectiveness differs"
    );
}

/// Runs one KKβ fleet twice under the same scheduler — batched and forced
/// single-step — and requires identical executions.
fn check_fleet<S: Scheduler<amo_core::KkProcess> + Clone>(config: &KkConfig, sched: S, what: &str) {
    let run = |single: bool| {
        let (layout, fleet) = kk_fleet(config, false);
        let mem = VecRegisters::new(layout.cells());
        let mut engine = Engine::new(mem, fleet, sched.clone());
        if single {
            engine = engine.single_step();
        }
        engine.run(EngineLimits::default())
    };
    let fast = run(false);
    let reference = run(true);
    assert_exec_eq(&fast, &reference, what);
}

#[test]
fn exhaustive_small_grid_round_robin_quanta() {
    for &n in &[8usize, 20, 33, 64] {
        for &m in &[2usize, 3, 5] {
            if n < m {
                continue;
            }
            for &beta in &[m as u64, KkConfig::work_optimal_beta(m)] {
                let config = KkConfig::with_beta(n, m, beta).expect("valid config");
                for &q in &[2u64, 3, 7, 64, RoundRobin::BATCH_QUANTUM] {
                    check_fleet(
                        &config,
                        RoundRobin::new().with_quantum(q),
                        &format!("n={n} m={m} beta={beta} rr-quantum={q}"),
                    );
                }
            }
        }
    }
}

#[test]
fn exhaustive_small_grid_block_bursts() {
    for &n in &[16usize, 40] {
        for &m in &[2usize, 4] {
            let config = KkConfig::new(n, m).expect("valid config");
            for &(seed, burst) in &[(1u64, 2u64), (7, 5), (13, 33)] {
                check_fleet(
                    &config,
                    BlockScheduler::new(seed, burst),
                    &format!("n={n} m={m} block({seed},{burst})"),
                );
            }
        }
    }
}

#[test]
fn crash_injection_fires_at_the_same_action_under_batching() {
    let config = KkConfig::new(48, 4).expect("valid config");
    for &(p1, s1, p2, s2) in &[(1usize, 5u64, 2usize, 9u64), (3, 1, 4, 40), (1, 0, 2, 17)] {
        let plan = CrashPlan::at_steps([(p1, s1), (p2, s2)]);
        check_fleet(
            &config,
            WithCrashes::new(RoundRobin::new().with_quantum(16), plan.clone()),
            &format!("crashes ({p1}@{s1}, {p2}@{s2}) under rr-quantum=16"),
        );
        check_fleet(
            &config,
            WithCrashes::new(BlockScheduler::new(3, 11), plan),
            &format!("crashes ({p1}@{s1}, {p2}@{s2}) under block(3,11)"),
        );
    }
}

#[test]
fn adversarial_schedulers_are_untouched_by_the_fast_path() {
    // The adversaries keep the default quantum of 1, so the fast path never
    // engages: forcing the reference path must change nothing.
    let config = KkConfig::new(40, 4).expect("valid config");
    for options in [
        SimOptions::lockstep(),
        SimOptions::stuck_announcement(),
        SimOptions::staleness(),
    ] {
        let fast = run_simulated(&config, options.clone());
        let reference = run_simulated(&config, options.clone().single_step());
        assert_eq!(
            fast.performed, reference.performed,
            "{:?}",
            options.scheduler
        );
        assert_eq!(
            fast.total_steps, reference.total_steps,
            "{:?}",
            options.scheduler
        );
        assert_eq!(fast.mem_work, reference.mem_work, "{:?}", options.scheduler);
        assert_eq!(
            fast.effectiveness, reference.effectiveness,
            "{:?}",
            options.scheduler
        );
    }
}

/// Report-level equality across *every* fast-path ingredient: the batched
/// run with the announcement-epoch cache (and optionally the interleaved
/// `done` layout) must match the cache-free, row-major, forced-single-step
/// reference — the strongest form of the observational-invisibility
/// contract, covering `local_work` exactly (the cache compensates every
/// skipped probe's accounting).
fn assert_cache_equivalent(config: &KkConfig, base: SimOptions, what: &str) {
    let reference = run_simulated(
        config,
        base.clone()
            .with_epoch_cache(false)
            .with_interleaved_done(false)
            .single_step(),
    );
    for interleaved in [false, true] {
        let fast = run_simulated(config, base.clone().with_interleaved_done(interleaved));
        assert_eq!(
            fast.performed, reference.performed,
            "{what} soa={interleaved}: performed differ"
        );
        assert_eq!(
            fast.total_steps, reference.total_steps,
            "{what} soa={interleaved}: total_steps differ"
        );
        assert_eq!(
            fast.mem_work, reference.mem_work,
            "{what} soa={interleaved}: shared work differs"
        );
        assert_eq!(
            fast.local_work, reference.local_work,
            "{what} soa={interleaved}: local work differs"
        );
        assert_eq!(
            fast.crashed, reference.crashed,
            "{what} soa={interleaved}: crashes differ"
        );
        assert_eq!(
            fast.effectiveness, reference.effectiveness,
            "{what} soa={interleaved}: effectiveness differs"
        );
    }
}

#[test]
fn epoch_cache_and_layout_are_observationally_invisible() {
    for &(n, m) in &[(8usize, 2usize), (40, 4), (77, 3), (150, 6)] {
        for &beta in &[m as u64, KkConfig::work_optimal_beta(m)] {
            if beta >= n as u64 {
                continue;
            }
            let config = KkConfig::with_beta(n, m, beta).expect("valid config");
            for &q in &[2u64, 16, RoundRobin::BATCH_QUANTUM] {
                assert_cache_equivalent(
                    &config,
                    SimOptions::round_robin().with_quantum(q),
                    &format!("n={n} m={m} beta={beta} q={q}"),
                );
            }
        }
    }
}

#[test]
fn epoch_cache_is_invisible_under_crashes() {
    let config = KkConfig::new(64, 4).expect("valid config");
    for &(p1, s1, p2, s2) in &[(1usize, 5u64, 2usize, 9u64), (3, 1, 4, 40), (1, 31, 2, 7)] {
        let plan = CrashPlan::at_steps([(p1, s1), (p2, s2)]);
        for &q in &[3u64, 16, 1024] {
            assert_cache_equivalent(
                &config,
                SimOptions::round_robin()
                    .with_quantum(q)
                    .with_crash_plan(plan.clone()),
                &format!("crashes ({p1}@{s1}, {p2}@{s2}) q={q}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random `(n, m, β, quantum, crash seed)`: the runner-level batched
    /// round-robin equals its single-step reference report-for-report.
    #[test]
    fn random_configs_batched_equals_single_step(
        n in 4usize..120,
        m in 2usize..7,
        beta_extra in 0u64..40,
        quantum in 2u64..300,
        crash_seed in any::<u64>(),
        f in 0usize..3,
    ) {
        prop_assume!(n >= m);
        let config = KkConfig::with_beta(n, m, m as u64 + beta_extra).expect("valid");
        let f = f.min(m - 1);
        let plan = CrashPlan::random(m, f, (n as u64) * 2, crash_seed);
        let base = SimOptions::round_robin()
            .with_quantum(quantum)
            .with_crash_plan(plan);
        let fast = run_simulated(&config, base.clone());
        let reference = run_simulated(&config, base.single_step());
        prop_assert_eq!(fast.performed, reference.performed);
        prop_assert_eq!(fast.total_steps, reference.total_steps);
        prop_assert_eq!(fast.crashed, reference.crashed);
        prop_assert_eq!(fast.completed, reference.completed);
        prop_assert_eq!(fast.mem_work, reference.mem_work);
        prop_assert_eq!(fast.local_work, reference.local_work);
        prop_assert_eq!(fast.effectiveness, reference.effectiveness);
    }

    /// Random block schedules: bursts are contiguous quanta, so the fast
    /// path must replay the identical execution.
    #[test]
    fn random_block_schedules_are_batch_invariant(
        n in 4usize..100,
        m in 2usize..6,
        seed in any::<u64>(),
        burst in 1u64..50,
    ) {
        prop_assume!(n >= m);
        let config = KkConfig::new(n, m).expect("valid");
        let base = SimOptions::block(seed, burst);
        let fast = run_simulated(&config, base.clone());
        let reference = run_simulated(&config, base.single_step());
        prop_assert_eq!(fast.performed, reference.performed);
        prop_assert_eq!(fast.total_steps, reference.total_steps);
        prop_assert_eq!(fast.mem_work, reference.mem_work);
        prop_assert_eq!(fast.local_work, reference.local_work);
        prop_assert_eq!(fast.effectiveness, reference.effectiveness);
    }
}
