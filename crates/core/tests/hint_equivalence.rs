//! Hinted-selection equivalence at the fleet level, plus the
//! tracked-prefix epoch-memory contract.
//!
//! `KkProcess` threads a [`SelectHint`] from each `compNext` pick into the
//! next one, repairing it across its own performs and dropping it whenever
//! a foreign job is merged into `DONE`. The hinted walk must be
//! observationally invisible: a fleet backed by the hinted [`FenwickSet`]
//! must produce the same shared-memory observables as one backed by the
//! unhinted [`DenseFenwickSet`] oracle under every scheduler — including
//! the foreign-write-heavy adversaries whose whole point is to interleave
//! invalidating merges between selections — and arena-recycled register
//! files must replay fresh-allocation runs report-for-report.

use amo_core::{
    run_simulated, run_simulated_in, FleetArena, KkConfig, KkLayout, KkProcess, SimOptions,
};
use amo_ostree::DenseFenwickSet;
use amo_sim::{CrashPlan, Engine, EngineLimits, Execution, RoundRobin, VecRegisters, WithCrashes};

/// Drives one config through identical schedules with both set backends and
/// compares every backend-independent observable.
fn assert_backends_agree(config: &KkConfig, quantum: u64, what: &str) {
    let layout = KkLayout::contiguous(config.m(), config.n(), false);
    let run_blocked = || -> Execution {
        let fleet: Vec<KkProcess> = (1..=config.m())
            .map(|pid| KkProcess::from_config(pid, config, layout))
            .collect();
        let mem = VecRegisters::new(layout.cells());
        let sched = WithCrashes::new(
            RoundRobin::new().with_quantum(quantum),
            CrashPlan::default(),
        );
        Engine::new(mem, fleet, sched).run(EngineLimits::default())
    };
    let run_dense = || -> Execution {
        let fleet: Vec<KkProcess<DenseFenwickSet>> = (1..=config.m())
            .map(|pid| KkProcess::from_config(pid, config, layout))
            .collect();
        let mem = VecRegisters::new(layout.cells());
        let sched = WithCrashes::new(
            RoundRobin::new().with_quantum(quantum),
            CrashPlan::default(),
        );
        Engine::new(mem, fleet, sched).run(EngineLimits::default())
    };
    let blocked = run_blocked();
    let dense = run_dense();
    assert_eq!(blocked.performed, dense.performed, "{what}: performed");
    assert_eq!(
        blocked.total_steps, dense.total_steps,
        "{what}: total_steps"
    );
    assert_eq!(blocked.mem_work, dense.mem_work, "{what}: shared work");
    assert_eq!(
        blocked.effectiveness(),
        dense.effectiveness(),
        "{what}: effectiveness"
    );
}

#[test]
fn hinted_fenwick_matches_dense_oracle_across_quanta() {
    for &(n, m) in &[(48usize, 3usize), (130, 4), (600, 5)] {
        let config = KkConfig::new(n, m).expect("valid config");
        for &q in &[1u64, 2, 16, 512] {
            assert_backends_agree(&config, q, &format!("n={n} m={m} q={q}"));
        }
    }
}

/// Foreign-write-heavy adversarial schedules: every scheduler here forces
/// interleavings where other processes' `done` entries land between a
/// process's selections, so hints are dropped and re-anchored constantly.
#[test]
fn hints_survive_adversarial_interleavings() {
    let config = KkConfig::new(80, 4).expect("valid config");
    for options in [
        SimOptions::lockstep(),
        SimOptions::staleness(),
        SimOptions::stuck_announcement(),
        SimOptions::random(0xC0FFEE),
        SimOptions::block(7, 23),
    ] {
        let report = run_simulated(&config, options);
        assert!(report.violations.is_empty(), "safety under adversary");
    }
}

/// Arena-recycled register files must replay fresh-allocation runs exactly,
/// hints and all — including `local_work`, which would diverge if hint
/// state leaked between tenants of a recycled buffer.
#[test]
fn arena_reuse_replays_fresh_runs() {
    let mut arena = FleetArena::new();
    for &(n, m) in &[(200usize, 4usize), (64, 2), (333, 5), (200, 4)] {
        let config = KkConfig::new(n, m).expect("valid config");
        for options in [SimOptions::round_robin_batched(), SimOptions::round_robin()] {
            let fresh = run_simulated(&config, options.clone());
            let pooled = run_simulated_in(&mut arena, &config, options);
            assert_eq!(fresh.performed, pooled.performed, "n={n} m={m}");
            assert_eq!(fresh.total_steps, pooled.total_steps, "n={n} m={m}");
            assert_eq!(fresh.mem_work, pooled.mem_work, "n={n} m={m}");
            assert_eq!(fresh.local_work, pooled.local_work, "n={n} m={m}");
            assert_eq!(fresh.effectiveness, pooled.effectiveness, "n={n} m={m}");
        }
    }
    assert!(arena.reuses() > 0, "the arena actually recycled buffers");
}

/// Tracked-prefix epoch memory: a batched (cache-on) run reports a peak
/// epoch footprint proportional to the cells actually written — far below
/// the full register file — and a single-step run (cache off, tracking
/// off) reports zero.
#[test]
fn epoch_memory_is_proportional_to_touched_cells() {
    let config = KkConfig::new(20_000, 4).expect("valid config");
    let fast = run_simulated(&config, SimOptions::round_robin_batched());
    let cells_bytes = (4 + 4 * 20_000) as u64 * 8;
    assert!(fast.epoch_mem_bytes > 0, "cache-on runs track epochs");
    assert!(
        fast.epoch_mem_bytes * 2 < cells_bytes,
        "tracked prefix ({} B) must stay well below the full file ({} B)",
        fast.epoch_mem_bytes,
        cells_bytes
    );
    let single = run_simulated(&config, SimOptions::round_robin());
    assert_eq!(
        single.epoch_mem_bytes, 0,
        "single-step runs keep epoch tracking off entirely"
    );
}
