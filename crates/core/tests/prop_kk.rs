//! Property tests for KKβ over random instances, schedules and crash plans.

use amo_core::{run_simulated, KkConfig, SimOptions};
use amo_sim::CrashPlan;
use proptest::prelude::*;

/// Strategy: a valid (n, m, beta) triple.
fn instance() -> impl Strategy<Value = (usize, usize, u64)> {
    (1usize..=6).prop_flat_map(|m| {
        let lo = (2 * m).max(m + 1);
        (lo..=60usize, Just(m))
            .prop_flat_map(move |(n, m)| (Just(n), Just(m), m as u64..=(3 * m * m) as u64))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lemma 4.1 + Theorem 4.4 under random schedules and crashes.
    #[test]
    fn random_schedules_safe_and_effective(
        (n, m, beta) in instance(),
        seed in any::<u64>(),
        plan_seed in 0usize..8,
    ) {
        let config = KkConfig::with_beta(n, m, beta).unwrap();
        // Derive a crash plan deterministically from plan_seed.
        let f = plan_seed % m;
        let plan = CrashPlan::at_steps((1..=f).map(|p| (p, (plan_seed * 37 + p * 11) as u64)));
        let report = run_simulated(
            &config,
            SimOptions::random(seed).with_crash_plan(plan),
        );
        prop_assert!(report.violations.is_empty(), "at-most-once violated: {:?}", report.violations);
        prop_assert!(report.completed, "wait-freedom violated (step cap hit)");
        prop_assert!(
            report.effectiveness >= config.effectiveness_bound(),
            "effectiveness {} < bound {}",
            report.effectiveness,
            config.effectiveness_bound()
        );
        prop_assert!(report.effectiveness <= n as u64);
    }

    /// The same instance is deterministic under the same seed.
    #[test]
    fn simulation_is_reproducible((n, m, beta) in instance(), seed in any::<u64>()) {
        let config = KkConfig::with_beta(n, m, beta).unwrap();
        let a = run_simulated(&config, SimOptions::random(seed));
        let b = run_simulated(&config, SimOptions::random(seed));
        prop_assert_eq!(&a.performed, &b.performed);
        prop_assert_eq!(a.total_steps, b.total_steps);
        prop_assert_eq!(a.work(), b.work());
    }

    /// Bursty adversarial schedules stay safe.
    #[test]
    fn block_schedules_safe(
        (n, m, beta) in instance(),
        seed in any::<u64>(),
        burst in 1u64..64,
    ) {
        let config = KkConfig::with_beta(n, m, beta).unwrap();
        let report = run_simulated(&config, SimOptions::block(seed, burst));
        prop_assert!(report.violations.is_empty());
        prop_assert!(report.effectiveness >= config.effectiveness_bound());
    }

    /// The Theorem 4.4 adversary achieves the bound exactly whenever its
    /// preconditions hold: n ≥ 2m − 1 (distinct first picks) and
    /// n ≥ β + m − 1 (the bound does not saturate; the survivor's first
    /// cycle, which runs with an empty TRY set, already lies past the
    /// stopping window otherwise).
    #[test]
    fn stuck_adversary_exact((n, m, beta) in instance()) {
        prop_assume!(n >= 2 * m - 1);
        prop_assume!(n as u64 >= beta + m as u64 - 1);
        let config = KkConfig::with_beta(n, m, beta).unwrap();
        let report = run_simulated(&config, SimOptions::stuck_announcement());
        prop_assert!(report.violations.is_empty());
        prop_assert_eq!(report.effectiveness, config.effectiveness_bound());
    }

    /// Crashing f processes can never push effectiveness above n − 0 nor
    /// below the Theorem 4.4 bound; with zero crashes and a fair schedule,
    /// everything but the final β + m − 2 window is performed.
    #[test]
    fn no_crash_round_robin_effectiveness((n, m, beta) in instance()) {
        let config = KkConfig::with_beta(n, m, beta).unwrap();
        let report = run_simulated(&config, SimOptions::round_robin());
        prop_assert!(report.crashed.is_empty());
        prop_assert!(report.effectiveness >= config.effectiveness_bound());
    }
}

mod crash_plan_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Arbitrary crash plans (f ≤ m − 1) preserve safety and the bound.
        #[test]
        fn arbitrary_crash_plans_safe(
            m in 2usize..=5,
            seed in any::<u64>(),
            budgets in prop::collection::vec(0u64..300, 1..5),
        ) {
            let n = 12 * m;
            let config = KkConfig::new(n, m).unwrap();
            let plan = crash_plan_from(m, &budgets);
            let report = run_simulated(
                &config,
                SimOptions::random(seed).with_crash_plan(plan),
            );
            prop_assert!(report.violations.is_empty());
            prop_assert!(report.effectiveness >= config.effectiveness_bound());
        }
    }

    fn crash_plan_from(m: usize, budgets: &[u64]) -> CrashPlan {
        CrashPlan::at_steps(
            budgets
                .iter()
                .take(m - 1)
                .enumerate()
                .map(|(i, &b)| (i + 1, b)),
        )
    }

    #[test]
    fn helper_caps_crashes() {
        let plan = crash_plan_from(3, &[1, 2, 3, 4]);
        assert_eq!(plan.crash_count(), 2);
    }
}
