//! Fine-grained transition tests for the KKβ automaton — each asserts one
//! behaviour of Fig. 2 that the coarser integration tests could mask.

use amo_core::{KkConfig, KkLayout, KkMode, KkPhase, KkProcess, SpanMap};
use amo_ostree::FenwickSet;
use amo_sim::{Process, Registers, StepEvent, VecRegisters};

fn step(p: &mut KkProcess, mem: &VecRegisters) -> StepEvent {
    Process::<VecRegisters>::step(p, mem)
}

/// Drives `p` until it reaches `phase` (or panics after a step budget).
fn drive_to(p: &mut KkProcess, mem: &VecRegisters, phase: KkPhase) {
    let mut guard = 0;
    while p.phase() != phase {
        step(p, mem);
        guard += 1;
        assert!(guard < 100_000, "never reached {phase:?}");
    }
}

#[test]
fn gather_try_skips_self_without_reading() {
    let m = 3;
    let config = KkConfig::new(9, m).unwrap();
    let layout = KkLayout::contiguous(m, 9, false);
    let mem = VecRegisters::new(layout.cells());
    let mut p = KkProcess::from_config(2, &config, layout);
    drive_to(&mut p, &mem, KkPhase::GatherTry);
    mem.reset_work();
    // Three gatherTry iterations: q = 1 (read), q = 2 (self, local), q = 3 (read).
    let e1 = step(&mut p, &mem);
    let e2 = step(&mut p, &mem);
    let e3 = step(&mut p, &mem);
    assert!(matches!(e1, StepEvent::Read { .. }));
    assert_eq!(e2, StepEvent::Local, "own register is skipped");
    assert!(matches!(e3, StepEvent::Read { .. }));
    assert_eq!(mem.work().reads, 2);
    assert_eq!(p.phase(), KkPhase::GatherDone);
}

#[test]
fn gather_done_consumes_a_full_row_without_advancing_q() {
    let m = 2;
    let n = 8;
    let config = KkConfig::new(n, m).unwrap();
    let layout = KkLayout::contiguous(m, n, false);
    let mem = VecRegisters::new(layout.cells());
    // Pre-log three completed jobs for process 2.
    for (pos, job) in [(1u64, 5u64), (2, 6), (3, 7)] {
        mem.write(layout.done_cell(2, pos), job);
    }
    let mut p = KkProcess::from_config(1, &config, layout);
    drive_to(&mut p, &mem, KkPhase::GatherDone);
    // Row walk: q=1 self-skip, then reads 5, 6, 7, then the 0 terminator.
    step(&mut p, &mem); // self
    for _ in 0..3 {
        assert!(matches!(step(&mut p, &mem), StepEvent::Read { .. }));
        assert_eq!(p.phase(), KkPhase::GatherDone, "stays on the row");
    }
    step(&mut p, &mem); // reads 0 → advances past q = 2
    assert_eq!(p.phase(), KkPhase::Check);
    assert_eq!(p.done_len(), 3);
    assert_eq!(p.free_len(), n - 3);
}

#[test]
fn gather_done_resumes_row_position_across_cycles() {
    // POS(q) persists: a second gather must not re-read old entries.
    let m = 2;
    let n = 10;
    let config = KkConfig::new(n, m).unwrap();
    let layout = KkLayout::contiguous(m, n, false);
    let mem = VecRegisters::new(layout.cells());
    mem.write(layout.done_cell(2, 1), 9);
    let mut p = KkProcess::from_config(1, &config, layout);
    // First full cycle (job 1 gets performed).
    let mut guard = 0;
    while p.performs() == 0 {
        step(&mut p, &mem);
        guard += 1;
        assert!(guard < 10_000);
    }
    assert_eq!(p.done_len(), 1, "learned job 9 from row 2");
    // Process 2 logs one more; p's next gather starts at POS(2) = 2.
    mem.write(layout.done_cell(2, 2), 8);
    mem.reset_work();
    drive_to(&mut p, &mem, KkPhase::Check);
    assert_eq!(p.done_len(), 3, "job 1 (own) + 9 + 8");
    // Reads: gatherTry (1: q=2) + gatherDone on row 2 (8 then 0) = 3 total.
    assert_eq!(mem.work().reads, 3, "old entries are not re-read");
}

#[test]
fn try_set_deduplicates_repeated_announcements() {
    let m = 4;
    let n = 16;
    let config = KkConfig::new(n, m).unwrap();
    let layout = KkLayout::contiguous(m, n, false);
    let mem = VecRegisters::new(layout.cells());
    // Everyone else announces the same job.
    for q in 2..=4 {
        mem.write(layout.next_cell(q), 7);
    }
    let mut p = KkProcess::from_config(1, &config, layout);
    drive_to(&mut p, &mem, KkPhase::GatherDone);
    // TRY = {7}: the dedup keeps |TRY| ≤ m − 1 tight.
    drive_to(&mut p, &mem, KkPhase::Check);
    p.check_invariants().expect("TRY invariants");
}

#[test]
fn zero_announcements_are_ignored() {
    let m = 2;
    let config = KkConfig::new(8, m).unwrap();
    let layout = KkLayout::contiguous(m, 8, false);
    let mem = VecRegisters::new(layout.cells());
    let mut p = KkProcess::from_config(1, &config, layout);
    drive_to(&mut p, &mem, KkPhase::Check);
    // next_2 is 0 (init): TRY must remain empty, check must pass.
    step(&mut p, &mem);
    assert_eq!(
        p.phase(),
        KkPhase::Do,
        "no phantom collision from init values"
    );
}

#[test]
fn done_write_appends_at_increasing_positions() {
    let n = 6;
    let config = KkConfig::new(n, 1).unwrap();
    let layout = KkLayout::contiguous(1, n, false);
    let mem = VecRegisters::new(layout.cells());
    let mut p = KkProcess::from_config(1, &config, layout);
    let mut guard = 0;
    while !p.is_terminated() {
        step(&mut p, &mem);
        guard += 1;
        assert!(guard < 100_000);
    }
    let snap = mem.snapshot();
    let row: Vec<u64> = (1..=n as u64)
        .map(|pos| snap[layout.done_cell(1, pos)])
        .collect();
    let mut sorted = row.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (1..=n as u64).collect::<Vec<_>>(),
        "all jobs logged once"
    );
    assert!(row.iter().all(|&v| v != 0), "log is dense");
}

#[test]
fn iter_mode_flag_checked_between_check_and_do() {
    // The flag read happens after check succeeds and before do — a flag
    // raised in that window must abort the do (Lemma 6.2's interleaving).
    let n = 8;
    let layout = KkLayout::contiguous(1, n, true);
    let mem = VecRegisters::new(layout.cells());
    let mut p = KkProcess::new(
        1,
        1,
        2,
        layout,
        FenwickSet::with_all(n),
        KkMode::IterStep { output_free: false },
        SpanMap::Identity,
    );
    drive_to(&mut p, &mem, KkPhase::FlagRead);
    // Raise the flag exactly in the window.
    mem.write(layout.flag_cell().unwrap(), 1);
    step(&mut p, &mem); // flag read
    assert_eq!(p.phase(), KkPhase::FinalGatherTry, "do aborted");
    assert_eq!(p.performs(), 0);
}

#[test]
fn stepping_is_deterministic() {
    let config = KkConfig::new(20, 2).unwrap();
    let layout = KkLayout::contiguous(2, 20, false);
    let run = || {
        let mem = VecRegisters::new(layout.cells());
        let mut a = KkProcess::from_config(1, &config, layout);
        let mut b = KkProcess::from_config(2, &config, layout);
        let mut events = Vec::new();
        for i in 0..500 {
            let p = if i % 2 == 0 { &mut a } else { &mut b };
            if !p.is_terminated() {
                events.push(step(p, &mem));
            }
        }
        events
    };
    assert_eq!(run(), run());
}

#[test]
fn blocks_span_map_partial_tail_in_do() {
    // A super-job do at the tail must clip at n (SpanMap::Blocks).
    let blocks = 3usize; // universe of 3 super-jobs over 10 jobs, size 4
    let layout = KkLayout::contiguous(1, blocks, true);
    let mem = VecRegisters::new(layout.cells());
    let mut p = KkProcess::new(
        1,
        1,
        1,
        layout,
        FenwickSet::with_all(blocks),
        KkMode::IterStep { output_free: false },
        SpanMap::Blocks {
            size: 4,
            total_jobs: 10,
        },
    );
    let mut spans = Vec::new();
    while !p.is_terminated() {
        if let StepEvent::Perform { span } = step(&mut p, &mem) {
            spans.push(span);
        }
    }
    assert!(
        spans.iter().any(|s| s.lo == 9 && s.hi == 10),
        "tail block clipped: {spans:?}"
    );
}
