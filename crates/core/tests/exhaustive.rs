//! Machine-checking Lemma 4.1 (at-most-once) by exhaustive exploration.
//!
//! For small instances, the explorer enumerates *every* schedule — and every
//! crash pattern up to `f` — and checks that no job is ever performed twice
//! on any path. This covers classes of interleavings that randomized testing
//! cannot certify, including the crash-between-`do`-and-`done` window the
//! Lemma 4.1 proof reasons about explicitly.

use amo_core::{kk_fleet, KkConfig};
use amo_sim::{explore, ExploreConfig, MemoMode, VecRegisters};

fn check(n: usize, m: usize, beta: u64, max_crashes: usize, max_states: usize) {
    let config = KkConfig::with_beta(n, m, beta).unwrap();
    let (layout, fleet) = kk_fleet(&config, false);
    let mem = VecRegisters::new(layout.cells());
    let cfg = ExploreConfig {
        max_crashes,
        max_states,
        ..ExploreConfig::default()
    };
    let out = explore(mem, fleet, cfg);
    assert!(
        out.violation.is_none(),
        "n={n} m={m} beta={beta} f={max_crashes}: violation {:?} via {:?}",
        out.violation,
        out.violation_trace
    );
    if out.complete {
        // Wait-freedom (Lemma 4.3): every complete path terminates, so the
        // search reaches terminal states; and the worst path respects the
        // Theorem 4.4 effectiveness bound.
        assert!(out.terminal_states > 0);
        let bound = config.effectiveness_bound();
        assert!(
            out.min_effectiveness.unwrap() >= bound,
            "min effectiveness {} below bound {bound}",
            out.min_effectiveness.unwrap()
        );
    }
}

#[test]
fn two_procs_three_jobs_no_crashes_complete() {
    check(3, 2, 2, 0, 5_000_000);
}

#[test]
fn two_procs_four_jobs_no_crashes_complete() {
    check(4, 2, 2, 0, 5_000_000);
}

#[test]
fn two_procs_three_jobs_one_crash_complete() {
    check(3, 2, 2, 1, 8_000_000);
}

#[test]
fn two_procs_four_jobs_one_crash() {
    check(4, 2, 2, 1, 8_000_000);
}

#[test]
fn two_procs_beta_three() {
    check(4, 2, 3, 1, 8_000_000);
}

#[test]
fn three_procs_three_jobs_no_crashes() {
    check(3, 3, 3, 0, 8_000_000);
}

#[test]
fn three_procs_four_jobs_bounded() {
    // State space is large; a capped search is still a strong randomized-
    // beyond check: every state visited is a distinct reachable global
    // state, and no path to any of them may double-perform.
    check(4, 3, 3, 0, 2_000_000);
}

#[test]
fn three_procs_with_crashes_bounded() {
    check(3, 3, 3, 2, 2_000_000);
}

#[test]
fn history_memo_mode_agrees() {
    let config = KkConfig::new(3, 2).unwrap();
    let (layout, fleet) = kk_fleet(&config, false);
    let mem = VecRegisters::new(layout.cells());
    let cfg = ExploreConfig {
        max_crashes: 1,
        memo: MemoMode::StateAndHistory,
        max_states: 8_000_000,
        ..ExploreConfig::default()
    };
    let out = explore(mem, fleet, cfg);
    assert!(out.violation.is_none());
}

#[test]
fn min_effectiveness_is_exactly_the_bound_for_tiny_instance() {
    // n=4, m=2, β=2: bound = 4 − (2 + 2 − 2) = 2. The explorer must find an
    // execution achieving the bound (crash one process holding a job) and
    // nothing below it.
    let config = KkConfig::new(4, 2).unwrap();
    let (layout, fleet) = kk_fleet(&config, false);
    let mem = VecRegisters::new(layout.cells());
    let cfg = ExploreConfig {
        max_crashes: 1,
        max_states: 8_000_000,
        ..ExploreConfig::default()
    };
    let out = explore(mem, fleet, cfg);
    assert!(out.verified(), "search must complete");
    assert_eq!(out.min_effectiveness, Some(config.effectiveness_bound()));
    assert_eq!(
        out.max_effectiveness,
        Some(4),
        "some path performs everything"
    );
}
