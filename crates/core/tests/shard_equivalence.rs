//! Cross-shard-count equivalence: the phased sharded driver produces
//! **bit-identical** [`AmoReport`]s for every shard count S ∈ {1, 2, 4, 8}
//! and every worker-thread count — across schedulers × crash plans ×
//! epoch-cache on/off — and the batched phased path is pinned against its
//! per-action single-step reference.
//!
//! The S=1, threads=1 phased run is the canonical reference the others are
//! compared against. It is deliberately *not* the interleaving engine:
//! a phased schedule serves every epoch's reads from the previous barrier
//! snapshot, which is a different (still sequentially consistent) schedule
//! than the engine's interleavings — KKβ announce-then-gather cycles make
//! literal bit-equality to the unsharded engine impossible for any
//! communicating fleet (the `amo_sim::shard` docs spell out the witness
//! argument; read-free fleets *are* pinned exactly against the engine in
//! `amo_sim`'s own shard tests). What this suite pins instead: shard- and
//! thread-count invariance of every deterministic observable, zero
//! at-most-once violations in every phased cell, and the Theorem 4.4
//! effectiveness bound holding under the phased schedule too.
//!
//! CI runs this suite under forced `AMO_SHARDS=1` and `AMO_SHARDS=4` legs:
//! when the variable is set, its value is prepended to every cell's shard
//! grid so the forced count is exercised in combination with every cell.

use amo_core::{run_scenario_simulated, AmoReport, KkConfig};
use amo_sim::{CrashPlan, ScenarioSpec, ShardSpec};

/// Shard counts exercised per cell; `AMO_SHARDS` (the CI matrix lever)
/// prepends a forced count.
fn shard_grid() -> Vec<usize> {
    let mut grid = vec![2, 4, 8];
    if let Ok(forced) = std::env::var("AMO_SHARDS") {
        let forced: usize = forced
            .parse()
            .unwrap_or_else(|_| panic!("AMO_SHARDS must be a shard count, got {forced:?}"));
        grid.insert(0, forced.max(1));
    }
    grid
}

fn config() -> KkConfig {
    KkConfig::new(48, 8).expect("valid config")
}

/// Runs one phased cell at the given shard/thread counts.
fn phased(spec: &ScenarioSpec, shards: usize, threads: usize) -> AmoReport {
    run_scenario_simulated(
        &config(),
        &spec
            .clone()
            .with_shard_spec(ShardSpec::new(shards, threads)),
    )
}

/// Asserts every (S, threads) combination reproduces the S=1/T=1 phased
/// reference bit-for-bit, that the cell is safe, and that it meets the
/// Theorem 4.4 bound.
fn assert_cell(label: &str, spec: &ScenarioSpec) {
    let reference = phased(spec, 1, 1);
    assert!(
        reference.violations.is_empty(),
        "{label}: at-most-once violated in phased reference"
    );
    assert!(
        reference.completed,
        "{label}: phased reference hit step cap"
    );
    assert!(
        reference.effectiveness >= config().effectiveness_bound(),
        "{label}: effectiveness {} below Theorem 4.4 bound {}",
        reference.effectiveness,
        config().effectiveness_bound()
    );
    for shards in shard_grid() {
        for threads in [1usize, 2, 4] {
            let got = phased(spec, shards, threads);
            assert_eq!(
                got, reference,
                "{label}: S={shards} T={threads} diverged from phased reference"
            );
        }
    }
}

#[test]
fn round_robin_batched_cached() {
    assert_cell("rr-batched cache-on", &ScenarioSpec::round_robin_batched());
}

#[test]
fn round_robin_batched_uncached() {
    assert_cell(
        "rr-batched cache-off",
        &ScenarioSpec::round_robin_batched().with_epoch_cache(false),
    );
}

#[test]
fn round_robin_awkward_quantum() {
    // A quantum that cuts gather sweeps mid-flight: turns end on budget
    // exhaustion inside sweeps, and resumed sweeps read a *newer* snapshot
    // — the merge key must still make every shard count agree.
    assert_cell("rr quantum-7", &ScenarioSpec::round_robin().with_quantum(7));
}

#[test]
fn random_quantized() {
    assert_cell(
        "random quantum-16",
        &ScenarioSpec::random(0x5EED).with_quantum(16),
    );
}

#[test]
fn round_robin_with_crashes() {
    assert_cell(
        "rr-batched crash-plan",
        &ScenarioSpec::round_robin_batched().with_crash_plan(CrashPlan::at_steps([
            (2usize, 40u64),
            (5, 0),
            (7, 613),
        ])),
    );
}

#[test]
fn random_with_random_crashes() {
    assert_cell(
        "random random-crashes",
        &ScenarioSpec::random(0xACE)
            .with_quantum(32)
            .with_crash_plan(CrashPlan::random(8, 5, 4_000, 0xC0FFEE)),
    );
}

#[test]
fn crashes_with_cache_off() {
    assert_cell(
        "rr-batched crash-plan cache-off",
        &ScenarioSpec::round_robin_batched()
            .with_epoch_cache(false)
            .with_crash_plan(CrashPlan::at_steps([(1usize, 100u64), (8, 250)])),
    );
}

#[test]
fn batched_turns_match_single_step_reference() {
    // The phased fast path (KkProcess::step_turn's batched sweeps and
    // cache collapses) against the per-action reference driver, which
    // replays each turn action-by-action and stops at the same
    // communication boundaries (Process::at_comm_boundary).
    for (label, spec) in [
        ("rr-batched", ScenarioSpec::round_robin_batched()),
        ("rr quantum-7", ScenarioSpec::round_robin().with_quantum(7)),
        ("random", ScenarioSpec::random(0xBEE).with_quantum(16)),
        (
            "rr crashes",
            ScenarioSpec::round_robin_batched()
                .with_crash_plan(CrashPlan::at_steps([(3usize, 77u64)])),
        ),
    ] {
        for shards in [1usize, 4] {
            let fast = phased(&spec, shards, 1);
            let reference = run_scenario_simulated(
                &config(),
                &spec
                    .clone()
                    .single_step()
                    .with_shard_spec(ShardSpec::sequential(shards)),
            );
            assert_eq!(
                fast, reference,
                "{label}: S={shards} batched turns diverged from single-step reference"
            );
        }
    }
}

#[test]
fn collision_tracking_is_shard_invariant() {
    assert_cell(
        "rr-batched collisions",
        &ScenarioSpec::round_robin_batched().with_collision_tracking(),
    );
}

#[test]
fn epoch_mem_bytes_is_shard_invariant() {
    // The tracked-prefix epoch footprint is a property of the one backing
    // register file the merge replays into, so it must not vary with S.
    let spec = ScenarioSpec::round_robin_batched();
    let reference = phased(&spec, 1, 1);
    assert!(
        reference.epoch_mem_bytes > 0,
        "cache cells should track epochs"
    );
    for shards in [2usize, 8] {
        assert_eq!(
            phased(&spec, shards, 2).epoch_mem_bytes,
            reference.epoch_mem_bytes
        );
    }
}
