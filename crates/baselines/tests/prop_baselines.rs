//! Property tests for the comparators: safety under arbitrary schedules and
//! crash plans, plus the closed-form effectiveness predictions.

use amo_baselines::{run_baseline_simulated, AmoBaselineKind, BaselineOptions, TwoProcess};
use amo_sim::{CrashPlan, Engine, EngineLimits, RandomScheduler, VecRegisters, WithCrashes};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two-process algorithm: at-most-once and effectiveness ≥ n − 1
    /// under any random schedule, crash-free.
    #[test]
    fn two_process_any_schedule(n in 1u64..200, seed in any::<u64>()) {
        let (l, r) = TwoProcess::pair(n);
        let exec = Engine::new(VecRegisters::new(2), vec![l, r], RandomScheduler::new(seed))
            .run(EngineLimits::default());
        prop_assert!(exec.violations().is_empty());
        prop_assert!(exec.effectiveness() >= n - 1, "got {}", exec.effectiveness());
        prop_assert!(exec.completed);
    }

    /// With one crash at an arbitrary point, effectiveness ≥ n − 1 still
    /// (n − f with f = 1).
    #[test]
    fn two_process_one_crash(n in 2u64..150, seed in any::<u64>(), budget in 0u64..400) {
        let victim = 1 + (seed as usize % 2);
        let (l, r) = TwoProcess::pair(n);
        let sched = WithCrashes::new(
            RandomScheduler::new(seed),
            CrashPlan::at_steps([(victim, budget)]),
        );
        let exec = Engine::new(VecRegisters::new(2), vec![l, r], sched)
            .run(EngineLimits::default());
        prop_assert!(exec.violations().is_empty());
        prop_assert!(exec.effectiveness() >= n - 1, "got {}", exec.effectiveness());
    }

    /// TAS at-most-once: effectiveness exactly within [n − f, n] for any
    /// crash placement.
    #[test]
    fn tas_amo_tracks_n_minus_f(
        m in 2usize..=5,
        n_mult in 3usize..=20,
        seed in any::<u64>(),
    ) {
        let n = n_mult * m;
        let plan = CrashPlan::random(m, m - 1, 60, seed);
        let f = plan.crash_count() as u64;
        let r = run_baseline_simulated(
            AmoBaselineKind::TasAmo,
            n,
            m,
            BaselineOptions::random(seed).with_crash_plan(plan),
        );
        prop_assert!(r.violations.is_empty());
        prop_assert!(r.effectiveness >= n as u64 - f, "f={f} got {}", r.effectiveness);
        prop_assert!(r.effectiveness <= n as u64);
    }

    /// Trivial split: chunks are disjoint under any schedule, and immediate
    /// crashes cost exactly their chunks.
    #[test]
    fn trivial_split_immediate_crashes(
        m in 1usize..=6,
        n_mult in 1usize..=25,
        f_pick in 0usize..6,
    ) {
        let n = n_mult * m; // divisible: chunks are exactly n/m
        let f = f_pick % m;
        let r = run_baseline_simulated(
            AmoBaselineKind::TrivialSplit,
            n,
            m,
            BaselineOptions::default().with_crash_plan(CrashPlan::first_f_immediately(f)),
        );
        prop_assert!(r.violations.is_empty());
        prop_assert_eq!(r.effectiveness, ((m - f) * (n / m)) as u64);
    }

    /// Pairs hybrid stays safe for any m, schedule and crash plan.
    #[test]
    fn pairs_hybrid_safe(
        m in 2usize..=7,
        n_mult in 2usize..=15,
        seed in any::<u64>(),
    ) {
        let n = n_mult * m;
        let plan = CrashPlan::random(m, m - 1, 80, seed);
        let r = run_baseline_simulated(
            AmoBaselineKind::PairsHybrid,
            n,
            m,
            BaselineOptions::random(seed).with_crash_plan(plan),
        );
        prop_assert!(r.violations.is_empty());
        prop_assert!(r.completed);
    }
}
