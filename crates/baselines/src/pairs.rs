use amo_sim::{Process, Registers, StepEvent};

use crate::two_process::{TwoProcess, TwoProcessRole};

/// Pairwise composition of the optimal two-process algorithm: processes
/// `(1,2), (3,4), …` each share one static chunk of the jobs; an odd final
/// process works its chunk alone.
///
/// This is the natural composition of \[26\]'s building block (see DESIGN.md
/// substitutions): within a pair the dynamics are optimal (`chunk − 1`
/// worst case), but across pairs nothing rebalances — if both members of a
/// pair crash, their whole remaining chunk is lost. KKβ strictly dominates
/// it in worst-case effectiveness for `m > 2`, which is experiment E6's
/// point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PairsHybrid {
    inner: TwoProcess,
}

impl PairsHybrid {
    /// Builds the full fleet for `m` processes over `1..=n`.
    ///
    /// Cell `p − 1` is process `p`'s announcement register.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n < m` (chunks must be non-empty).
    pub fn fleet(n: u64, m: usize) -> Vec<PairsHybrid> {
        assert!(m > 0, "need at least one process");
        assert!(n >= m as u64, "need n >= m for non-empty chunks");
        let pairs = m / 2;
        let groups = pairs + usize::from(m % 2 == 1);
        let mut fleet = Vec::with_capacity(m);
        for g in 0..groups {
            let lo = g as u64 * n / groups as u64 + 1;
            let hi = (g as u64 + 1) * n / groups as u64;
            let p1 = 2 * g + 1;
            if p1 < m {
                fleet.push(PairsHybrid {
                    inner: TwoProcess::new(p1, TwoProcessRole::Left, p1 - 1, p1, lo, hi),
                });
                fleet.push(PairsHybrid {
                    inner: TwoProcess::new(p1 + 1, TwoProcessRole::Right, p1, p1 - 1, lo, hi),
                });
            } else {
                fleet.push(PairsHybrid {
                    inner: TwoProcess::new(p1, TwoProcessRole::Solo, p1 - 1, p1 - 1, lo, hi),
                });
            }
        }
        fleet
    }

    /// Cells needed by a fleet of `m` processes.
    pub fn cells(m: usize) -> usize {
        m
    }
}

impl<R: Registers + ?Sized> Process<R> for PairsHybrid {
    fn step(&mut self, mem: &R) -> StepEvent {
        self.inner.step(mem)
    }

    fn pid(&self) -> usize {
        Process::<R>::pid(&self.inner)
    }

    fn is_terminated(&self) -> bool {
        Process::<R>::is_terminated(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::{CrashPlan, Engine, EngineLimits, RoundRobin, VecRegisters, WithCrashes};

    fn run(n: u64, m: usize, plan: CrashPlan) -> amo_sim::Execution {
        let fleet = PairsHybrid::fleet(n, m);
        let sched = WithCrashes::new(RoundRobin::new(), plan);
        Engine::new(VecRegisters::new(PairsHybrid::cells(m)), fleet, sched)
            .run(EngineLimits::default())
    }

    #[test]
    fn crash_free_loses_at_most_one_per_pair() {
        for (n, m) in [(40u64, 4usize), (41, 5), (60, 6), (10, 2), (9, 3)] {
            let exec = run(n, m, CrashPlan::none());
            assert!(exec.violations().is_empty(), "n={n} m={m}");
            let pairs = (m / 2) as u64;
            assert!(
                exec.effectiveness() >= n - pairs,
                "n={n} m={m}: got {}",
                exec.effectiveness()
            );
        }
    }

    #[test]
    fn odd_process_is_solo_and_unaffected() {
        // m = 3: pair (1,2) on the first chunk, solo 3 on the second.
        let exec = run(30, 3, CrashPlan::at_steps([(1usize, 0u64), (2, 0)]));
        // Pair fully crashed: its chunk (15 jobs) lost; solo does its 15.
        assert_eq!(exec.effectiveness(), 15);
    }

    #[test]
    fn double_crash_loses_whole_chunk() {
        let exec = run(40, 4, CrashPlan::at_steps([(3usize, 0u64), (4, 0)]));
        assert_eq!(exec.effectiveness(), 20, "second pair's chunk lost");
        assert!(exec.violations().is_empty());
    }

    #[test]
    fn single_crash_per_pair_is_nearly_harmless() {
        let exec = run(40, 4, CrashPlan::at_steps([(2usize, 1u64), (4, 1)]));
        // Each crashed member may hold one announced job hostage.
        assert!(exec.effectiveness() >= 38);
    }

    #[test]
    #[should_panic(expected = "n >= m")]
    fn tiny_n_rejected() {
        PairsHybrid::fleet(2, 3);
    }

    #[test]
    fn fleet_pids_are_ordered() {
        let fleet = PairsHybrid::fleet(20, 5);
        for (i, p) in fleet.iter().enumerate() {
            assert_eq!(Process::<VecRegisters>::pid(p), i + 1);
        }
    }
}
