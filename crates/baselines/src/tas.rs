use amo_sim::{JobSpan, Process, Registers, StepEvent};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TasAmoPhase {
    Claim,
    Perform { job: u64 },
}

/// Test-and-set at-most-once: one claim bit per job; a process performs a
/// job iff its atomic swap on the bit returns 0.
///
/// This realises the paper's §1 remark: *"one can associate a test-and-set
/// bit with each job, ensuring that the job is assigned to the only process
/// that successfully sets the shared bit"* — effectiveness-optimal
/// (`n − f`: only a claim held by a crashed process is lost) but requiring
/// read-modify-write registers, which the paper's algorithms deliberately
/// avoid. Experiment E6 uses it as the effectiveness ceiling.
///
/// Layout: claim bits at cells `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TasAmo {
    pid: usize,
    n: u64,
    start: u64,
    scanned: u64,
    phase: TasAmoPhase,
    terminated: bool,
}

impl TasAmo {
    /// Creates the claimer for process `pid` of `m` over `1..=n` (scan
    /// starts at a per-process offset to reduce contention).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `pid ∉ 1..=m`, or `n == 0`.
    pub fn new(pid: usize, m: usize, n: u64) -> Self {
        assert!(m > 0 && (1..=m).contains(&pid) && n > 0);
        let start = (pid as u64 - 1) * n / m as u64;
        Self {
            pid,
            n,
            start,
            scanned: 0,
            phase: TasAmoPhase::Claim,
            terminated: false,
        }
    }

    /// Cells needed over `n` jobs.
    pub fn cells(n: usize) -> usize {
        n
    }
}

impl<R: Registers + ?Sized> Process<R> for TasAmo {
    fn step(&mut self, mem: &R) -> StepEvent {
        match self.phase {
            TasAmoPhase::Claim => {
                if self.scanned >= self.n {
                    self.terminated = true;
                    return StepEvent::Terminated;
                }
                let job = (self.start + self.scanned) % self.n + 1;
                let cell = job as usize - 1;
                let prev = mem.swap(cell, 1);
                if prev == 0 {
                    self.phase = TasAmoPhase::Perform { job };
                } else {
                    self.scanned += 1;
                }
                StepEvent::Rmw { cell }
            }
            TasAmoPhase::Perform { job } => {
                self.scanned += 1;
                self.phase = TasAmoPhase::Claim;
                StepEvent::Perform {
                    span: JobSpan::single(job),
                }
            }
        }
    }

    fn pid(&self) -> usize {
        self.pid
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::{CrashPlan, Engine, EngineLimits, RoundRobin, VecRegisters, WithCrashes};

    fn run(n: u64, m: usize, plan: CrashPlan) -> amo_sim::Execution {
        let fleet: Vec<_> = (1..=m).map(|p| TasAmo::new(p, m, n)).collect();
        let sched = WithCrashes::new(RoundRobin::new(), plan);
        Engine::new(VecRegisters::new(TasAmo::cells(n as usize)), fleet, sched)
            .run(EngineLimits::default())
    }

    #[test]
    fn crash_free_performs_everything() {
        let exec = run(50, 4, CrashPlan::none());
        assert!(exec.violations().is_empty());
        assert_eq!(exec.effectiveness(), 50, "TAS is effectiveness-optimal");
    }

    #[test]
    fn each_crash_loses_at_most_one_job() {
        // Crash f processes right after a claim (odd step counts land
        // between swap and perform in the worst case).
        for f in 1..=3usize {
            let plan = CrashPlan::at_steps((1..=f).map(|p| (p, 1u64)));
            let exec = run(60, 4, plan);
            assert!(exec.violations().is_empty());
            assert!(
                exec.effectiveness() >= 60 - f as u64,
                "f={f}: got {}",
                exec.effectiveness()
            );
        }
    }

    #[test]
    fn uses_rmw_not_plain_writes() {
        let exec = run(10, 2, CrashPlan::none());
        assert!(exec.mem_work.rmws > 0);
        assert_eq!(exec.mem_work.writes, 0, "no plain writes at all");
    }

    #[test]
    fn exhaustive_small_instance() {
        use amo_sim::{explore, ExploreConfig};
        let fleet: Vec<_> = (1..=2).map(|p| TasAmo::new(p, 2, 3)).collect();
        let out = explore(
            VecRegisters::new(3),
            fleet,
            ExploreConfig {
                max_crashes: 1,
                ..ExploreConfig::default()
            },
        );
        assert!(out.verified());
        assert!(out.min_effectiveness.unwrap() >= 2, "n − f = 3 − 1");
    }
}
