use amo_sim::{JobSpan, Process, Registers, StepEvent};

/// The trivial at-most-once algorithm of §2.2: split the `n` jobs into `m`
/// static chunks, one per process, no communication.
///
/// At-most-once is immediate (chunks are disjoint); effectiveness collapses
/// to `(m − f)·⌊n/m⌋` — a crash loses the victim's whole remaining chunk,
/// which is the comparison point that motivates KKβ.
///
/// Uses no shared memory at all (each step is a local `do`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrivialSplit {
    pid: usize,
    next: u64,
    hi: u64,
    terminated: bool,
}

impl TrivialSplit {
    /// Creates the worker for chunk `pid` of `m` over `1..=n`.
    ///
    /// Chunk boundaries follow §2.2's `n/m` split: process `p` owns
    /// `((p−1)·n/m, p·n/m]` (integer division), so all chunks are within
    /// one job of each other and cover `1..=n` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `pid ∉ 1..=m`.
    pub fn new(pid: usize, m: usize, n: u64) -> Self {
        assert!(m > 0 && (1..=m).contains(&pid), "pid {pid} out of 1..={m}");
        let lo = (pid as u64 - 1) * n / m as u64 + 1;
        let hi = pid as u64 * n / m as u64;
        Self {
            pid,
            next: lo,
            hi,
            terminated: false,
        }
    }

    /// Remaining jobs in this worker's chunk.
    pub fn remaining(&self) -> u64 {
        (self.hi + 1).saturating_sub(self.next)
    }
}

impl<R: Registers + ?Sized> Process<R> for TrivialSplit {
    fn step(&mut self, _mem: &R) -> StepEvent {
        if self.next > self.hi {
            self.terminated = true;
            return StepEvent::Terminated;
        }
        let job = self.next;
        self.next += 1;
        StepEvent::Perform {
            span: JobSpan::single(job),
        }
    }

    fn pid(&self) -> usize {
        self.pid
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::{Engine, EngineLimits, RoundRobin, VecRegisters};

    #[test]
    fn chunks_partition_the_jobs() {
        let n = 11u64;
        let m = 3;
        let mut covered = Vec::new();
        for p in 1..=m {
            let w = TrivialSplit::new(p, m, n);
            covered.extend(w.next..=w.hi);
        }
        assert_eq!(covered, (1..=n).collect::<Vec<_>>());
    }

    #[test]
    fn full_fleet_performs_everything() {
        let procs: Vec<_> = (1..=4).map(|p| TrivialSplit::new(p, 4, 20)).collect();
        let exec = Engine::new(VecRegisters::new(0), procs, RoundRobin::new())
            .run(EngineLimits::default());
        assert!(exec.violations().is_empty());
        assert_eq!(exec.effectiveness(), 20);
        assert_eq!(exec.mem_work.total(), 0, "no shared memory used");
    }

    #[test]
    fn crash_loses_whole_chunk() {
        use amo_sim::{CrashPlan, WithCrashes};
        let n = 20u64;
        let procs: Vec<_> = (1..=4).map(|p| TrivialSplit::new(p, 4, n)).collect();
        let sched = WithCrashes::new(RoundRobin::new(), CrashPlan::first_f_immediately(1));
        let exec = Engine::new(VecRegisters::new(0), procs, sched).run(EngineLimits::default());
        assert_eq!(exec.effectiveness(), 15, "(m-f) * n/m = 3 * 5");
    }

    #[test]
    fn remaining_counts_down() {
        let mut w = TrivialSplit::new(1, 2, 10);
        assert_eq!(w.remaining(), 5);
        let mem = VecRegisters::new(0);
        w.step(&mem);
        assert_eq!(w.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn bad_pid_rejected() {
        TrivialSplit::new(5, 4, 10);
    }
}
