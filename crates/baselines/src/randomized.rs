//! The randomized-pick KKβ ablation (A4): same automaton, same `check`
//! safety logic, but `compNext` draws a uniformly random candidate from
//! `FREE \ TRY` instead of rank-splitting.

use amo_core::{KkConfig, KkLayout, KkProcess, PickRule};

/// Builds a KKβ fleet whose processes pick candidates uniformly at random
/// (seeded per process from `seed`), for comparison against the paper's
/// deterministic rank-splitting rule.
///
/// Safety (Lemma 4.1) is untouched — only the collision rate and work
/// change, which is precisely what the ablation measures.
pub fn randomized_kk_fleet(
    config: &KkConfig,
    seed: u64,
    track_collisions: bool,
) -> (KkLayout, Vec<KkProcess>) {
    let layout = KkLayout::contiguous(config.m(), config.n(), false);
    let fleet = (1..=config.m())
        .map(|pid| {
            let p = KkProcess::from_config(pid, config, layout)
                .with_pick_rule(PickRule::uniform(seed.wrapping_add(pid as u64 * 0x9E37)));
            if track_collisions {
                p.with_collision_tracking()
            } else {
                p
            }
        })
        .collect();
    (layout, fleet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::{Engine, EngineLimits, RandomScheduler, RoundRobin, VecRegisters};

    #[test]
    fn randomized_fleet_is_safe_and_terminates() {
        let config = KkConfig::new(60, 3).unwrap();
        let (layout, fleet) = randomized_kk_fleet(&config, 99, false);
        let exec = Engine::new(VecRegisters::new(layout.cells()), fleet, RoundRobin::new())
            .run(EngineLimits::default());
        assert!(exec.violations().is_empty());
        assert!(exec.completed);
        assert!(exec.effectiveness() >= config.effectiveness_bound());
    }

    #[test]
    fn randomized_fleet_is_reproducible() {
        let config = KkConfig::new(40, 2).unwrap();
        let run = |seed| {
            let (layout, fleet) = randomized_kk_fleet(&config, seed, false);
            Engine::new(
                VecRegisters::new(layout.cells()),
                fleet,
                RandomScheduler::new(7),
            )
            .run(EngineLimits::default())
            .performed
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds pick differently");
    }

    #[test]
    fn random_schedule_stress() {
        let config = KkConfig::with_beta(80, 4, 16).unwrap();
        for seed in 0..8 {
            let (layout, fleet) = randomized_kk_fleet(&config, seed, false);
            let exec = Engine::new(
                VecRegisters::new(layout.cells()),
                fleet,
                RandomScheduler::new(seed),
            )
            .run(EngineLimits::default());
            assert!(exec.violations().is_empty(), "seed {seed}");
            assert!(exec.effectiveness() >= config.effectiveness_bound());
        }
    }
}
