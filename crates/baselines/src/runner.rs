//! Unified runner producing [`AmoReport`]s for every comparator, so the
//! comparison tables (experiment E6) are generated through one interface.
//!
//! Simulated runs route through the shared scenario layer
//! ([`amo_sim::run_scenario`]): [`BaselineOptions`] lowers bit-identically
//! via [`to_scenario`](BaselineOptions::to_scenario), and
//! [`run_baseline_scenario`] accepts a full [`ScenarioSpec`] — giving the
//! comparators schedulers the legacy options never could (bursty blocks,
//! quantized fairness, the lockstep adversary).

use amo_core::{AmoReport, KkConfig};
use amo_sim::thread::ThreadSpec;
use amo_sim::{
    AtomicRegisters, CrashPlan, EngineLimits, Execution, MemOrder, Process, ScenarioHooks,
    ScenarioProcess, ScenarioSpec, Scheduler, SchedulerSpec, VecRegisters,
};

use crate::pairs::PairsHybrid;
use crate::randomized::randomized_kk_fleet;
use crate::tas::TasAmo;
use crate::trivial::TrivialSplit;
use crate::two_process::TwoProcess;

/// The at-most-once comparators of experiment E6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoBaselineKind {
    /// Static `n/m` split (§2.2's trivial algorithm).
    TrivialSplit,
    /// The optimal two-process algorithm (forces `m = 2`).
    TwoProcess,
    /// Pairwise composition of the two-process algorithm.
    PairsHybrid,
    /// Test-and-set claiming (RMW; the `n − f` ceiling).
    TasAmo,
    /// KKβ with uniformly random candidate picks (ablation A4).
    RandomizedKk(
        /// Pick seed.
        u64,
    ),
}

impl AmoBaselineKind {
    /// Label for table rows.
    pub fn label(&self) -> &'static str {
        match self {
            AmoBaselineKind::TrivialSplit => "trivial-split",
            AmoBaselineKind::TwoProcess => "two-process",
            AmoBaselineKind::PairsHybrid => "pairs-hybrid",
            AmoBaselineKind::TasAmo => "tas-amo",
            AmoBaselineKind::RandomizedKk(_) => "randomized-kk",
        }
    }

    /// Worst-case effectiveness of this comparator under `f` crashes (the
    /// analytic prediction printed next to measurements in Table 6).
    ///
    /// `None` when no closed form applies (the randomized ablation shares
    /// KKβ's bound).
    pub fn predicted_effectiveness(&self, n: u64, m: usize, f: usize) -> Option<u64> {
        match self {
            AmoBaselineKind::TrivialSplit => Some((m.saturating_sub(f)) as u64 * (n / m as u64)),
            // Worst case loses exactly the meeting/stuck job: n − max(1, f).
            AmoBaselineKind::TwoProcess => Some(n.saturating_sub((f as u64).max(1))),
            AmoBaselineKind::PairsHybrid => {
                // Adversary kills whole pairs first: each dead pair loses
                // its chunk (≈ n / ⌈m/2⌉), a lone crash in a pair loses ≤ 1.
                let groups = m / 2 + m % 2;
                let dead_pairs = (f / 2) as u64;
                let lone = (f % 2) as u64;
                Some(
                    n.saturating_sub(dead_pairs * (n / groups as u64))
                        .saturating_sub(lone + groups as u64 - dead_pairs),
                )
            }
            AmoBaselineKind::TasAmo => Some(n - f as u64),
            AmoBaselineKind::RandomizedKk(_) => None,
        }
    }
}

/// Options shared by the baseline runners.
#[derive(Debug, Clone, Default)]
pub struct BaselineOptions {
    /// Seeded random schedule; `None` = round-robin.
    pub schedule_seed: Option<u64>,
    /// Deterministic crash injection.
    pub crash_plan: CrashPlan,
    /// Step cap.
    pub limits: EngineLimits,
}

impl BaselineOptions {
    /// Random schedule from a seed.
    pub fn random(seed: u64) -> Self {
        Self {
            schedule_seed: Some(seed),
            ..Self::default()
        }
    }

    /// Adds a crash plan.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Lowers these options into the shared [`ScenarioSpec`] (strict
    /// round-robin or seeded random, single-step, no epoch cache — the
    /// comparator processes have none).
    pub fn to_scenario(&self) -> ScenarioSpec {
        ScenarioSpec {
            scheduler: match self.schedule_seed {
                Some(seed) => SchedulerSpec::Random(seed),
                None => SchedulerSpec::RoundRobin,
            },
            crash_plan: self.crash_plan.clone(),
            limits: self.limits,
            quantum: 1,
            epoch_cache: false,
            reference_single_step: false,
            backend: Default::default(),
            collisions: false,
            shard: Default::default(),
        }
    }
}

/// Registers the process-agnostic adversaries (via
/// [`amo_core::generic_adversary`] — one shared spelling of the registry
/// names) for a comparator process type; none of them carries an epoch
/// cache or collision instrumentation, so the other hooks keep their
/// defaults.
macro_rules! generic_adversaries_scenario {
    ($($ty:ty),+ $(,)?) => {$(
        impl ScenarioHooks for $ty {
            fn adversary(name: &str) -> Option<Box<dyn Scheduler<Self>>> {
                amo_core::generic_adversary(name)
            }
        }
    )+};
}

generic_adversaries_scenario!(TrivialSplit, TwoProcess, PairsHybrid, TasAmo);

fn to_report(exec: Execution, label: &'static str) -> AmoReport {
    let (effectiveness, violations) = exec.summary();
    AmoReport {
        effectiveness,
        violations,
        performed: exec.performed.iter().map(|r| (r.pid, r.span)).collect(),
        crashed: exec.crashed.clone(),
        restarted: exec.restarted.clone(),
        completed: exec.completed,
        mem_work: exec.mem_work,
        local_work: exec.local_work,
        total_steps: exec.total_steps,
        epoch_mem_bytes: 0,
        collisions: None,
        scheduler_label: label,
    }
}

fn run_generic<P: ScenarioProcess>(
    cells: usize,
    fleet: Vec<P>,
    spec: &ScenarioSpec,
    label: &'static str,
) -> AmoReport {
    let (exec, _slots, _mem) = amo_sim::run_scenario(VecRegisters::new(cells), fleet, spec);
    to_report(exec, label)
}

/// Runs a comparator in the simulator.
///
/// [`AmoBaselineKind::TwoProcess`] requires `m == 2`; everything else
/// accepts any `m ≥ 1` (with `n ≥ m`).
///
/// # Panics
///
/// Panics on invalid `(n, m)` combinations for the chosen kind.
pub fn run_baseline_simulated(
    kind: AmoBaselineKind,
    n: usize,
    m: usize,
    options: BaselineOptions,
) -> AmoReport {
    run_baseline_scenario(kind, n, m, &options.to_scenario())
}

/// Runs a comparator under an explicit [`ScenarioSpec`] — the spec-first
/// twin of [`run_baseline_simulated`], through which the scenario matrix
/// drives previously inexpressible cells (bursty blocks, quantized
/// fairness, the lockstep adversary) over the comparators.
///
/// The report label stays the *algorithm's* (for the E6 comparison
/// tables); the spec's scheduler label is reported by the scenario-first
/// KKβ runners instead.
///
/// # Panics
///
/// Panics on invalid `(n, m)` combinations for the chosen kind, and on
/// adversaries the comparator processes do not register.
pub fn run_baseline_scenario(
    kind: AmoBaselineKind,
    n: usize,
    m: usize,
    spec: &ScenarioSpec,
) -> AmoReport {
    let n64 = n as u64;
    match kind {
        AmoBaselineKind::TrivialSplit => {
            let fleet: Vec<_> = (1..=m).map(|p| TrivialSplit::new(p, m, n64)).collect();
            run_generic(0, fleet, spec, kind.label())
        }
        AmoBaselineKind::TwoProcess => {
            assert_eq!(m, 2, "TwoProcess is defined for m = 2");
            let (l, r) = TwoProcess::pair(n64);
            run_generic(2, vec![l, r], spec, kind.label())
        }
        AmoBaselineKind::PairsHybrid => {
            let fleet = PairsHybrid::fleet(n64, m);
            run_generic(PairsHybrid::cells(m), fleet, spec, kind.label())
        }
        AmoBaselineKind::TasAmo => {
            let fleet: Vec<_> = (1..=m).map(|p| TasAmo::new(p, m, n64)).collect();
            run_generic(TasAmo::cells(n), fleet, spec, kind.label())
        }
        AmoBaselineKind::RandomizedKk(seed) => {
            let config = KkConfig::new(n, m).expect("valid n/m");
            let (layout, fleet) = randomized_kk_fleet(&config, seed, false);
            run_generic(layout.cells(), fleet, spec, kind.label())
        }
    }
}

/// Runs a comparator on OS threads.
pub fn run_baseline_threads(
    kind: AmoBaselineKind,
    n: usize,
    m: usize,
    crash_plan: CrashPlan,
    order: MemOrder,
) -> AmoReport {
    let n64 = n as u64;
    fn go<P: Process<AtomicRegisters> + Send>(
        cells: usize,
        fleet: Vec<P>,
        crash_plan: CrashPlan,
        order: MemOrder,
        label: &'static str,
    ) -> AmoReport {
        let spec = ThreadSpec::new()
            .with_crash_plan(crash_plan)
            .with_order(order);
        let mem = spec.alloc(cells);
        let exec = spec.run(&mem, fleet);
        let (effectiveness, violations) =
            amo_sim::perform_summary(exec.performed.iter().map(|r| r.span));
        AmoReport {
            effectiveness,
            violations,
            performed: exec.performed.iter().map(|r| (r.pid, r.span)).collect(),
            crashed: exec.crashed.clone(),
            restarted: Vec::new(),
            completed: exec.completed,
            mem_work: exec.mem_work,
            local_work: exec.local_work,
            total_steps: exec.per_proc_steps.iter().sum(),
            epoch_mem_bytes: 0,
            collisions: None,
            scheduler_label: label,
        }
    }
    match kind {
        AmoBaselineKind::TrivialSplit => {
            let fleet: Vec<_> = (1..=m).map(|p| TrivialSplit::new(p, m, n64)).collect();
            go(0, fleet, crash_plan, order, kind.label())
        }
        AmoBaselineKind::TwoProcess => {
            assert_eq!(m, 2, "TwoProcess is defined for m = 2");
            let (l, r) = TwoProcess::pair(n64);
            go(2, vec![l, r], crash_plan, order, kind.label())
        }
        AmoBaselineKind::PairsHybrid => {
            let fleet = PairsHybrid::fleet(n64, m);
            go(
                PairsHybrid::cells(m),
                fleet,
                crash_plan,
                order,
                kind.label(),
            )
        }
        AmoBaselineKind::TasAmo => {
            let fleet: Vec<_> = (1..=m).map(|p| TasAmo::new(p, m, n64)).collect();
            go(TasAmo::cells(n), fleet, crash_plan, order, kind.label())
        }
        AmoBaselineKind::RandomizedKk(seed) => {
            let config = KkConfig::new(n, m).expect("valid n/m");
            let (layout, fleet) = randomized_kk_fleet(&config, seed, false);
            go(layout.cells(), fleet, crash_plan, order, kind.label())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_safe_crash_free() {
        for kind in [
            AmoBaselineKind::TrivialSplit,
            AmoBaselineKind::PairsHybrid,
            AmoBaselineKind::TasAmo,
            AmoBaselineKind::RandomizedKk(3),
        ] {
            let report = run_baseline_simulated(kind, 48, 4, BaselineOptions::random(1));
            assert!(report.violations.is_empty(), "{}", kind.label());
            assert!(report.completed, "{}", kind.label());
        }
        let two = run_baseline_simulated(
            AmoBaselineKind::TwoProcess,
            48,
            2,
            BaselineOptions::default(),
        );
        assert!(two.violations.is_empty());
        assert!(two.effectiveness >= 47);
    }

    #[test]
    fn trivial_split_prediction_matches_measurement() {
        let n = 100;
        let m = 4;
        let f = 2;
        let report = run_baseline_simulated(
            AmoBaselineKind::TrivialSplit,
            n,
            m,
            BaselineOptions::default().with_crash_plan(CrashPlan::first_f_immediately(f)),
        );
        let predicted = AmoBaselineKind::TrivialSplit
            .predicted_effectiveness(n as u64, m, f)
            .unwrap();
        assert_eq!(report.effectiveness, predicted);
    }

    #[test]
    fn tas_prediction_is_n_minus_f() {
        assert_eq!(
            AmoBaselineKind::TasAmo.predicted_effectiveness(100, 4, 3),
            Some(97)
        );
    }

    #[test]
    fn threads_run_all_kinds() {
        for kind in [
            AmoBaselineKind::TrivialSplit,
            AmoBaselineKind::PairsHybrid,
            AmoBaselineKind::TasAmo,
            AmoBaselineKind::RandomizedKk(9),
        ] {
            let report = run_baseline_threads(kind, 40, 4, CrashPlan::none(), MemOrder::SeqCst);
            assert!(report.violations.is_empty(), "{}", kind.label());
        }
    }

    #[test]
    #[should_panic(expected = "m = 2")]
    fn two_process_wrong_m_rejected() {
        let _ = run_baseline_simulated(
            AmoBaselineKind::TwoProcess,
            10,
            3,
            BaselineOptions::default(),
        );
    }
}
