use amo_sim::{JobSpan, Process, Registers, StepEvent};

/// Which end of the job range this process works from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwoProcessRole {
    /// Ascends from the low end (`l = lo, lo+1, …`).
    Left,
    /// Descends from the high end (`r = hi, hi−1, …`).
    Right,
    /// No partner: performs the whole range (used by
    /// [`PairsHybrid`](crate::PairsHybrid) for an odd process count).
    Solo,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Tp {
    Announce,
    ReadPeer,
    Do,
    End,
}

/// The optimal two-process at-most-once algorithm — the building block of
/// the prior deterministic work (Kentros et al. \[26\], which achieves
/// effectiveness `n − 1` for `m = 2`).
///
/// `Left` ascends, `Right` descends; each *announces* its candidate in its
/// single-writer register before reading the peer's announcement, and
/// performs the candidate only if the ranges have not met.
///
/// **At-most-once.** Suppose both perform job `j`. Left wrote `next_L = j`
/// before reading `next_R > j`; announcements are monotone, so Right had
/// not yet announced `j` at that read, i.e. `L.write(j) < L.read <
/// R.write(j)`. Symmetrically `R.write(j) < R.read < L.write(j)` — a cycle;
/// contradiction.
///
/// **Effectiveness `n − 1`.** Only the meeting job can be skipped by both
/// (each seeing the other's announcement of it); a crashed peer freezes its
/// announcement, so the survivor performs everything up to it — losing at
/// most the one announced job (`n − f` with `f = 1`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TwoProcess {
    pid: usize,
    role: TwoProcessRole,
    /// This process's announcement cell.
    own_cell: usize,
    /// The peer's announcement cell (ignored for `Solo`).
    peer_cell: usize,
    /// Range being shared with the peer.
    lo: u64,
    hi: u64,
    /// Current candidate.
    cur: u64,
    /// Peer announcement as last read (mapped sentinel).
    peer: u64,
    phase: Tp,
}

impl TwoProcess {
    /// Creates a worker over `lo..=hi` announcing in `own_cell` and reading
    /// the peer from `peer_cell`.
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0` or `lo > hi`.
    pub fn new(
        pid: usize,
        role: TwoProcessRole,
        own_cell: usize,
        peer_cell: usize,
        lo: u64,
        hi: u64,
    ) -> Self {
        assert!(lo >= 1 && lo <= hi, "invalid range {lo}..={hi}");
        let cur = match role {
            TwoProcessRole::Left | TwoProcessRole::Solo => lo,
            TwoProcessRole::Right => hi,
        };
        Self {
            pid,
            role,
            own_cell,
            peer_cell,
            lo,
            hi,
            cur,
            peer: 0,
            phase: Tp::Announce,
        }
    }

    /// Convenience pair over `1..=n` with cells `0` and `1` (pids 1 and 2).
    pub fn pair(n: u64) -> (TwoProcess, TwoProcess) {
        (
            TwoProcess::new(1, TwoProcessRole::Left, 0, 1, 1, n),
            TwoProcess::new(2, TwoProcessRole::Right, 1, 0, 1, n),
        )
    }

    fn in_range(&self) -> bool {
        (self.lo..=self.hi).contains(&self.cur)
    }

    /// Is the candidate safe given the peer's (sentinel-mapped) position?
    fn safe(&self) -> bool {
        match self.role {
            TwoProcessRole::Left => self.cur < self.peer,
            TwoProcessRole::Right => self.cur > self.peer,
            TwoProcessRole::Solo => true,
        }
    }
}

impl<R: Registers + ?Sized> Process<R> for TwoProcess {
    fn step(&mut self, mem: &R) -> StepEvent {
        match self.phase {
            Tp::Announce => {
                if !self.in_range() {
                    self.phase = Tp::End;
                    return StepEvent::Terminated;
                }
                mem.write(self.own_cell, self.cur);
                self.phase = match self.role {
                    TwoProcessRole::Solo => Tp::Do,
                    _ => Tp::ReadPeer,
                };
                StepEvent::Write {
                    cell: self.own_cell,
                }
            }
            Tp::ReadPeer => {
                let raw = mem.read(self.peer_cell);
                // 0 = peer has not announced yet: no constraint.
                self.peer = match (raw, self.role) {
                    (0, TwoProcessRole::Left) => self.hi + 1,
                    (0, _) => 0,
                    (v, _) => v,
                };
                self.phase = if self.safe() { Tp::Do } else { Tp::End };
                if self.phase == Tp::End {
                    return StepEvent::Read {
                        cell: self.peer_cell,
                    };
                }
                StepEvent::Read {
                    cell: self.peer_cell,
                }
            }
            Tp::Do => {
                let job = self.cur;
                match self.role {
                    TwoProcessRole::Left | TwoProcessRole::Solo => self.cur += 1,
                    TwoProcessRole::Right => {
                        if self.cur == self.lo {
                            // Avoid u64 underflow at the range floor.
                            self.cur = 0;
                        } else {
                            self.cur -= 1;
                        }
                    }
                }
                self.phase = Tp::Announce;
                StepEvent::Perform {
                    span: JobSpan::single(job),
                }
            }
            Tp::End => StepEvent::Terminated,
        }
    }

    fn pid(&self) -> usize {
        self.pid
    }

    fn is_terminated(&self) -> bool {
        self.phase == Tp::End
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::{
        explore, CrashPlan, Engine, EngineLimits, ExploreConfig, RoundRobin, VecRegisters,
        WithCrashes,
    };

    fn run_pair(n: u64, plan: CrashPlan) -> amo_sim::Execution {
        let (l, r) = TwoProcess::pair(n);
        let sched = WithCrashes::new(RoundRobin::new(), plan);
        Engine::new(VecRegisters::new(2), vec![l, r], sched).run(EngineLimits::default())
    }

    #[test]
    fn crash_free_round_robin_loses_at_most_one() {
        for n in [1u64, 2, 3, 10, 101] {
            let exec = run_pair(n, CrashPlan::none());
            assert!(exec.violations().is_empty(), "n={n}");
            assert!(
                exec.effectiveness() >= n - 1,
                "n={n}: {}",
                exec.effectiveness()
            );
        }
    }

    #[test]
    fn crashed_peer_does_not_block_survivor() {
        // Right crashes immediately: Left must perform all n jobs.
        let exec = run_pair(50, CrashPlan::at_steps([(2usize, 0u64)]));
        assert_eq!(exec.effectiveness(), 50);
        // Right crashes after announcing job 50 (1 step): job 50 is stuck.
        let exec = run_pair(50, CrashPlan::at_steps([(2usize, 1u64)]));
        assert_eq!(exec.effectiveness(), 49, "n − f with f = 1");
        assert!(exec.violations().is_empty());
    }

    #[test]
    fn exhaustive_at_most_once_small() {
        // Every interleaving and up-to-one crash for n ≤ 4.
        for n in 1u64..=4 {
            let (l, r) = TwoProcess::pair(n);
            let out = explore(
                VecRegisters::new(2),
                vec![l, r],
                ExploreConfig {
                    max_crashes: 1,
                    ..ExploreConfig::default()
                },
            );
            assert!(out.verified(), "n={n}: {:?}", out.violation);
            assert!(
                out.min_effectiveness.unwrap() >= n - 1,
                "n={n}: min eff {}",
                out.min_effectiveness.unwrap()
            );
        }
    }

    #[test]
    fn solo_role_performs_whole_range() {
        let mut p = TwoProcess::new(1, TwoProcessRole::Solo, 0, 0, 3, 7);
        let mem = VecRegisters::new(1);
        let mut jobs = Vec::new();
        while !Process::<VecRegisters>::is_terminated(&p) {
            if let StepEvent::Perform { span } = p.step(&mem) {
                jobs.push(span.lo);
            }
        }
        assert_eq!(jobs, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn empty_range_rejected() {
        TwoProcess::new(1, TwoProcessRole::Left, 0, 1, 5, 4);
    }
}
