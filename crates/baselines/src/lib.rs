//! At-most-once comparators for the KKβ evaluation (experiment E6).
//!
//! Every algorithm here solves (or approximates a solution to) the
//! at-most-once problem of §2.2, with a different position in the
//! effectiveness/primitive trade-off space:
//!
//! | algorithm | registers | worst-case effectiveness |
//! |---|---|---|
//! | [`TrivialSplit`] | R/W | `(m − f) · ⌊n / m⌋` (§2.2) |
//! | [`TwoProcess`] (`m = 2`) | R/W | `n − 1` — optimal (\[26\]'s building block) |
//! | [`PairsHybrid`] | R/W | loses whole chunks when a pair crashes |
//! | [`TasAmo`] | RMW (test-and-set) | `n − f` — the Theorem 2.1 optimum, but needs stronger primitives (§1's remark) |
//! | `RandomizedKk` (ablation) | R/W | as KKβ; random candidate picks ([`amo_core::PickRule`]) |
//!
//! KKβ dominates every read/write comparator here in worst-case
//! effectiveness for `m > 2`; `TasAmo` shows what the stronger primitive
//! buys. `PairsHybrid` composes the optimal two-process algorithm the way
//! the prior deterministic work \[26\] composes its building blocks — a
//! faithful-in-spirit stand-in, since \[26\]'s full construction is not in
//! the provided text (see DESIGN.md substitutions).
//!
//! # Examples
//!
//! ```
//! use amo_baselines::{run_baseline_simulated, AmoBaselineKind, BaselineOptions};
//!
//! let report = run_baseline_simulated(AmoBaselineKind::TrivialSplit, 100, 4,
//!                                     BaselineOptions::default());
//! assert!(report.violations.is_empty());
//! assert_eq!(report.effectiveness, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pairs;
mod randomized;
mod runner;
mod tas;
mod trivial;
mod two_process;

pub use pairs::PairsHybrid;
pub use randomized::randomized_kk_fleet;
pub use runner::{
    run_baseline_scenario, run_baseline_simulated, run_baseline_threads, AmoBaselineKind,
    BaselineOptions,
};
pub use tas::TasAmo;
pub use trivial::TrivialSplit;
pub use two_process::{TwoProcess, TwoProcessRole};
