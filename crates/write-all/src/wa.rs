use std::hash::{Hash, Hasher};

use amo_iterative::{IterConfig, IterLayout, IterativeProcess};
use amo_sim::{BatchOutcome, JobSpan, Process, Registers, StepEvent};

/// Register layout for `WA_IterativeKK(ε)`: the iterated algorithm's stage
/// layouts followed by the Write-All array `wa[1..n]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaLayout {
    iter: IterLayout,
    wa_base: usize,
}

impl WaLayout {
    /// Builds the layout for a configuration.
    pub fn new(config: &IterConfig) -> Self {
        let iter = config.layout();
        let wa_base = iter.cells();
        Self { iter, wa_base }
    }

    /// The stage layouts of the underlying iterated algorithm.
    pub fn iter(&self) -> &IterLayout {
        &self.iter
    }

    /// The cell holding `wa[job]` (`job ∈ 1..=n`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `job` is out of range.
    pub fn wa_cell(&self, job: u64) -> usize {
        debug_assert!(
            job >= 1 && job <= self.iter.n() as u64,
            "job {job} out of 1..={}",
            self.iter.n()
        );
        self.wa_base + job as usize - 1
    }

    /// First cell of the `wa` array.
    pub fn wa_base(&self) -> usize {
        self.wa_base
    }

    /// Total register cells (stages + `wa`).
    pub fn cells(&self) -> usize {
        self.wa_base + self.iter.n()
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum WaPhase {
    /// Delegating to the iterated driver.
    Driving,
    /// Writing the cells of a performed super-job, one per step.
    WritingSpan { next: u64, hi: u64 },
    /// Fig. 4 lines 14–16: performing every leftover job of the final
    /// output set (one write per step).
    FinalLoop { jobs: Vec<u64>, idx: usize },
    /// Terminated.
    Done,
}

/// One process of `WA_IterativeKK(ε)` (Fig. 4).
///
/// Wraps an [`IterativeProcess`] in the `FREE`-output variant and turns
/// every performed super-job into actual writes of `1` into the `wa` array
/// (one cell per step, so work accounting matches the model: a `do` on a
/// block of `s` jobs costs `s` shared writes). After the final stage it
/// enters the terminal loop, writing every job left in its output set —
/// redundantly if need be, which is what makes *completion* certain.
///
/// # Examples
///
/// ```
/// use amo_iterative::IterConfig;
/// use amo_sim::{Process, Registers, VecRegisters};
/// use amo_write_all::{certify, WaIterativeProcess, WaLayout};
///
/// let config = IterConfig::new(64, 1, 1)?;
/// let layout = WaLayout::new(&config);
/// let mem = VecRegisters::new(layout.cells());
/// let mut p = WaIterativeProcess::new(1, &config, layout.clone());
/// while !p.is_terminated() {
///     p.step(&mem);
/// }
/// assert!(certify(&mem, &layout).complete);
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WaIterativeProcess {
    inner: IterativeProcess,
    layout: WaLayout,
    phase: WaPhase,
    wa_writes: u64,
    // Construction parameters, kept so `on_restart` can rebuild the wrapped
    // driver from scratch (its per-stage state was volatile).
    beta: u64,
    cache: bool,
    // Local work of previous lives (the rebuilt driver restarts its own
    // counter at zero, but Definition 2.5 work is per automaton, not per
    // life).
    banked_local_work: u64,
}

impl WaIterativeProcess {
    /// Creates the process for `pid ∈ 1..=m`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or the layout does not match the
    /// configuration.
    pub fn new(pid: usize, config: &IterConfig, layout: WaLayout) -> Self {
        assert_eq!(layout.iter().n(), config.n(), "layout/config mismatch");
        let inner = IterativeProcess::new(pid, layout.iter().clone(), config.beta(), true);
        Self {
            inner,
            layout,
            phase: WaPhase::Driving,
            wa_writes: 0,
            beta: config.beta(),
            cache: false,
            banked_local_work: 0,
        }
    }

    /// Enables or disables the announcement-epoch cache on the wrapped
    /// driver (see `amo_core::KkProcess::set_epoch_cache`). Call before the
    /// first step.
    pub fn set_epoch_cache(&mut self, enabled: bool) {
        self.cache = enabled;
        self.inner.set_epoch_cache(enabled);
    }

    /// `true` once the terminal loop has finished.
    pub fn is_terminated(&self) -> bool {
        self.phase == WaPhase::Done
    }

    /// Writes into the `wa` array so far (the redundancy numerator).
    pub fn wa_writes(&self) -> u64 {
        self.wa_writes
    }

    /// The wrapped iterated driver (inspection).
    pub fn inner(&self) -> &IterativeProcess {
        &self.inner
    }

    fn write_one<R: Registers + ?Sized>(&mut self, mem: &R, job: u64) -> usize {
        let cell = self.layout.wa_cell(job);
        mem.write(cell, 1);
        self.wa_writes += 1;
        cell
    }

    /// A lower bound on the number of driver actions before the next
    /// possible `Perform`, from the driver's current stage phase. `0` means
    /// "a `do` may be imminent — use the per-action path".
    ///
    /// The bound is conservative: a `gatherDone` sweep only gets *longer*
    /// when log entries are consumed, and the final-gather path of a stage
    /// cannot perform at all (its last counted action is the stage's
    /// `Output`, so a bounded batch never crosses into the next stage's
    /// cycle).
    fn drive_bound(&self) -> u64 {
        use amo_core::KkPhase;
        let kk = self.inner.inner();
        let m = self.layout.iter().m() as u64;
        let q = kk.gather_cursor() as u64;
        let rem = m - q + 1;
        match kk.phase() {
            // Finish this sweep, then at least m gatherDone actions, check
            // and flagRead before a do.
            KkPhase::GatherTry => rem + m + 2,
            // Finish this sweep, then check and flagRead.
            KkPhase::GatherDone => rem + 2,
            // The terminal path never performs; stop at the stage's Output.
            KkPhase::FinalGatherTry => rem + m + 1,
            KkPhase::FinalGatherDone => rem + 1,
            _ => 0,
        }
    }
}

impl<R: Registers + ?Sized> Process<R> for WaIterativeProcess {
    fn step(&mut self, mem: &R) -> StepEvent {
        match &mut self.phase {
            WaPhase::Driving => match self.inner.step(mem) {
                StepEvent::Perform { span } => {
                    self.phase = WaPhase::WritingSpan {
                        next: span.lo,
                        hi: span.hi,
                    };
                    StepEvent::Perform { span }
                }
                StepEvent::Terminated => {
                    let jobs: Vec<u64> = self
                        .inner
                        .final_output()
                        .expect("driver terminated with an output")
                        .iter()
                        .collect();
                    self.phase = WaPhase::FinalLoop { jobs, idx: 0 };
                    StepEvent::Local
                }
                other => other,
            },
            WaPhase::WritingSpan { next, hi } => {
                let job = *next;
                let done = *next == *hi;
                *next += 1;
                if done {
                    self.phase = WaPhase::Driving;
                }
                let cell = self.write_one(mem, job);
                StepEvent::Write { cell }
            }
            WaPhase::FinalLoop { jobs, idx } => {
                if *idx < jobs.len() {
                    let job = jobs[*idx];
                    *idx += 1;
                    let cell = self.write_one(mem, job);
                    // The terminal loop is a sequence of `do` actions
                    // (Fig. 4 line 15); report the perform so the harness
                    // can measure redundancy. The write itself is already
                    // counted by the register file.
                    let _ = cell;
                    StepEvent::Perform {
                        span: JobSpan::single(job),
                    }
                } else {
                    self.phase = WaPhase::Done;
                    StepEvent::Terminated
                }
            }
            WaPhase::Done => {
                debug_assert!(false, "stepped after termination");
                StepEvent::Terminated
            }
        }
    }

    /// Macro-stepping fast path (see the [`Process::step_many`] contract).
    ///
    /// The write loops — `WritingSpan` after each super-job `do` and the
    /// terminal `FinalLoop` — are the `n`-dominant phases (one `wa`-array
    /// write per action) and run batched. The `Driving` phase must splice
    /// its span writes in immediately after every `Perform` of the inner
    /// driver, so it hands the driver a *bounded* batch: from the current
    /// inner phase, a `do` cannot occur within the next
    /// [`drive_bound`](Self::drive_bound) actions (a gather sweep must
    /// finish, plus the minimum `gatherDone`/`check`/`flagRead` tail), so
    /// batches capped at that bound run the driver's dominant sweep loops —
    /// including the epoch-cache whole-sweep skips — without per-action
    /// dispatch, while every `Perform` still falls on the per-action path.
    fn step_many(&mut self, mem: &R, budget: u64) -> BatchOutcome {
        debug_assert!(budget >= 1, "step_many needs a positive budget");
        let mut steps: u64 = 0;
        let mut performed: Vec<(u64, JobSpan)> = Vec::new();
        while steps < budget {
            if matches!(self.phase, WaPhase::Driving) {
                let bound = self.drive_bound();
                if bound >= 1 {
                    let inner_budget = bound.min(budget - steps);
                    let out = Process::<R>::step_many(&mut self.inner, mem, inner_budget);
                    debug_assert!(
                        out.performed.is_empty(),
                        "a do slipped into a bounded driver batch"
                    );
                    steps += out.steps;
                    if out.terminated {
                        // The driver's terminating action is the wrapper's
                        // *local* transition into the terminal loop, exactly
                        // as on the single-step path.
                        let jobs: Vec<u64> = self
                            .inner
                            .final_output()
                            .expect("driver terminated with an output")
                            .iter()
                            .collect();
                        self.phase = WaPhase::FinalLoop { jobs, idx: 0 };
                    }
                    continue;
                }
            }
            match &mut self.phase {
                WaPhase::WritingSpan { next, hi } => {
                    let mut job = *next;
                    let hi = *hi;
                    let mut finished = false;
                    while steps < budget {
                        finished = job == hi;
                        self.wa_writes += 1;
                        mem.write(self.layout.wa_cell(job), 1);
                        job += 1;
                        steps += 1;
                        if finished {
                            break;
                        }
                    }
                    if finished {
                        self.phase = WaPhase::Driving;
                    } else if let WaPhase::WritingSpan { next, .. } = &mut self.phase {
                        *next = job;
                    }
                }
                WaPhase::FinalLoop { jobs, idx } => {
                    while steps < budget {
                        if *idx < jobs.len() {
                            let job = jobs[*idx];
                            *idx += 1;
                            performed.push((steps, JobSpan::single(job)));
                            steps += 1;
                            self.wa_writes += 1;
                            mem.write(self.layout.wa_cell(job), 1);
                        } else {
                            self.phase = WaPhase::Done;
                            steps += 1;
                            return BatchOutcome {
                                steps,
                                performed,
                                terminated: true,
                            };
                        }
                    }
                }
                _ => {
                    let event = self.step(mem);
                    steps += 1;
                    match event {
                        StepEvent::Perform { span } => performed.push((steps - 1, span)),
                        StepEvent::Terminated => {
                            return BatchOutcome {
                                steps,
                                performed,
                                terminated: true,
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        BatchOutcome {
            steps,
            performed,
            terminated: false,
        }
    }

    fn pid(&self) -> usize {
        Process::<R>::pid(&self.inner)
    }

    fn is_terminated(&self) -> bool {
        WaIterativeProcess::is_terminated(self)
    }

    fn local_work(&self) -> u64 {
        self.banked_local_work + self.inner.local_work()
    }

    fn supports_restart(&self) -> bool {
        true
    }

    /// Restart semantics of `WA_IterativeKK(ε)`: the driver's per-stage
    /// local state (announcement sets, gather cursors, output accumulators)
    /// was volatile, so the process re-runs the whole iterated algorithm
    /// from its first stage against the *recovered* shared memory — claims
    /// and `wa` cells it wrote before the crash are still (durably) visible
    /// to everyone, so re-driving can at worst redo work the terminal loop
    /// would have redone anyway. The cumulative `wa_writes`/`local_work`
    /// counters persist: this is the same automaton resuming, not a new
    /// one.
    fn on_restart(&mut self, _mem: &R) {
        let pid = Process::<R>::pid(&self.inner);
        self.banked_local_work += self.inner.local_work();
        self.inner = IterativeProcess::new(pid, self.layout.iter().clone(), self.beta, true);
        self.inner.set_epoch_cache(self.cache);
        self.phase = WaPhase::Driving;
    }
}

impl PartialEq for WaIterativeProcess {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner && self.phase == other.phase
    }
}

impl Eq for WaIterativeProcess {}

impl Hash for WaIterativeProcess {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
        self.phase.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::certify;
    use amo_sim::VecRegisters;

    #[test]
    fn lone_process_completes_write_all() {
        let config = IterConfig::new(100, 1, 1).unwrap();
        let layout = WaLayout::new(&config);
        let mem = VecRegisters::new(layout.cells());
        let mut p = WaIterativeProcess::new(1, &config, layout.clone());
        let mut guard = 0;
        while !p.is_terminated() {
            Process::<VecRegisters>::step(&mut p, &mem);
            guard += 1;
            assert!(guard < 10_000_000);
        }
        let outcome = certify(&mem, &layout);
        assert!(outcome.complete, "missing: {:?}", outcome.missing);
        assert!(p.wa_writes() >= 100);
    }

    #[test]
    fn spans_become_individual_writes() {
        let config = IterConfig::new(64, 1, 1).unwrap();
        let layout = WaLayout::new(&config);
        let mem = VecRegisters::new(layout.cells());
        let mut p = WaIterativeProcess::new(1, &config, layout.clone());
        // Find the first Perform and count the writes that follow it.
        let mut span = None;
        while span.is_none() {
            if let StepEvent::Perform { span: s } = Process::<VecRegisters>::step(&mut p, &mem) {
                span = Some(s);
            }
        }
        let s = span.unwrap();
        for _ in 0..s.count() {
            let ev = Process::<VecRegisters>::step(&mut p, &mem);
            assert!(matches!(ev, StepEvent::Write { .. }), "got {ev:?}");
        }
        for job in s.jobs() {
            assert_eq!(mem.snapshot()[layout.wa_cell(job)], 1);
        }
    }

    #[test]
    fn wa_cell_layout_is_after_stages() {
        let config = IterConfig::new(32, 2, 1).unwrap();
        let layout = WaLayout::new(&config);
        assert_eq!(layout.wa_cell(1), layout.wa_base());
        assert_eq!(layout.cells(), layout.wa_base() + 32);
        assert!(layout.wa_base() >= layout.iter().cells());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of 1..=")]
    fn wa_cell_out_of_range_panics() {
        let config = IterConfig::new(8, 1, 1).unwrap();
        let layout = WaLayout::new(&config);
        layout.wa_cell(9);
    }
}
