use amo_sim::VecRegisters;

use crate::wa::WaLayout;

/// Result of certifying a Write-All array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyOutcome {
    /// `true` iff every cell of `wa[1..n]` holds `1`.
    pub complete: bool,
    /// Jobs whose cells are still `0` (empty iff `complete`).
    pub missing: Vec<u64>,
    /// Total jobs `n`.
    pub n: usize,
}

impl CertifyOutcome {
    /// Fraction of cells written, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        (self.n - self.missing.len()) as f64 / self.n as f64
    }
}

/// Checks that every `wa` cell holds `1` — the *certified* Write-All
/// acceptance test (§7).
///
/// Reads a quiescent snapshot; call only after the execution has finished.
pub fn certify(mem: &VecRegisters, layout: &WaLayout) -> CertifyOutcome {
    let snapshot = mem.snapshot();
    certify_snapshot(&snapshot, layout.wa_base(), layout.iter().n())
}

/// Certifies from a raw snapshot (shared by the thread runner, whose
/// register file is not a [`VecRegisters`]).
pub fn certify_snapshot(snapshot: &[u64], wa_base: usize, n: usize) -> CertifyOutcome {
    let missing: Vec<u64> = (1..=n as u64)
        .filter(|&job| snapshot[wa_base + job as usize - 1] == 0)
        .collect();
    CertifyOutcome {
        complete: missing.is_empty(),
        missing,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_snapshot() {
        let snap = vec![9, 9, 1, 1, 1]; // wa starts at cell 2
        let out = certify_snapshot(&snap, 2, 3);
        assert!(out.complete);
        assert!(out.missing.is_empty());
        assert_eq!(out.coverage(), 1.0);
    }

    #[test]
    fn missing_cells_reported_in_order() {
        let snap = vec![1, 0, 1, 0];
        let out = certify_snapshot(&snap, 0, 4);
        assert!(!out.complete);
        assert_eq!(out.missing, vec![2, 4]);
        assert_eq!(out.coverage(), 0.5);
    }

    #[test]
    fn zero_jobs_is_trivially_complete() {
        let out = certify_snapshot(&[], 0, 0);
        assert!(out.complete);
        assert_eq!(out.coverage(), 1.0);
    }

    #[test]
    fn nonzero_values_count_as_written() {
        // Any non-zero value certifies: the model writes 1, but the checker
        // is lenient to value encoding.
        let out = certify_snapshot(&[7], 0, 1);
        assert!(out.complete);
    }
}
