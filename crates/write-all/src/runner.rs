//! Configuration, runners and reports for the Write-All algorithms.
//!
//! The simulated entry points route through the unified scenario layer
//! ([`amo_sim::run_scenario`]): the legacy [`IterSimOptions`]-taking
//! runners lower bit-identically, and the `*_scenario` twins accept a
//! [`ScenarioSpec`] directly — which is what lets Write-All fleets run
//! under scenario cells the old option structs could not express (e.g.
//! quantized random schedules or the lockstep adversary with crash plans).

use amo_core::ConfigError;
use amo_iterative::{IterConfig, IterSimOptions};
use amo_sim::thread::ThreadSpec;
use amo_sim::{
    AtomicRegisters, CrashPlan, Execution, MemOrder, MemWork, ScenarioHooks, ScenarioProcess,
    ScenarioSpec, Scheduler, VecRegisters,
};

use crate::baselines::{baseline_cells, PermutationScanWa, SequentialWa, StaticPartitionWa, TasWa};
use crate::certify::{certify_snapshot, CertifyOutcome};
use crate::wa::{WaIterativeProcess, WaLayout};

/// Problem-instance parameters for `WA_IterativeKK(ε)` — the same shape as
/// [`IterConfig`] (`β = 3m²`, `1/ε` a positive integer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaConfig {
    iter: IterConfig,
}

impl WaConfig {
    /// Validates and builds a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if `m == 0` or `n < m`.
    pub fn new(n: usize, m: usize, inv_eps: u32) -> Result<Self, ConfigError> {
        Ok(Self {
            iter: IterConfig::new(n, m, inv_eps)?,
        })
    }

    /// Number of array cells (jobs) `n`.
    pub fn n(&self) -> usize {
        self.iter.n()
    }

    /// Number of processes `m`.
    pub fn m(&self) -> usize {
        self.iter.m()
    }

    /// The underlying iterated configuration.
    pub fn iter(&self) -> &IterConfig {
        &self.iter
    }

    /// Builds the register layout (stages + `wa` array).
    pub fn layout(&self) -> WaLayout {
        WaLayout::new(&self.iter)
    }

    /// Theorem 7.1 work envelope `n + m^{3+ε}·log₂ n` (unit constant).
    pub fn work_envelope(&self) -> f64 {
        self.iter.work_envelope()
    }
}

/// The Write-All comparators of experiment E5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaBaselineKind {
    /// One process writes everything (`m` is ignored).
    Sequential,
    /// Fault-intolerant `n/m` split.
    StaticPartition,
    /// Test-and-set claiming (RMW; Malewicz stand-in).
    Tas,
    /// Anderson–Woll-flavoured permutation scan with the given seed.
    PermutationScan(
        /// Permutation seed.
        u64,
    ),
}

impl WaBaselineKind {
    /// Human-readable label for table rows.
    pub fn label(&self) -> &'static str {
        match self {
            WaBaselineKind::Sequential => "sequential",
            WaBaselineKind::StaticPartition => "static-partition",
            WaBaselineKind::Tas => "tas-claim",
            WaBaselineKind::PermutationScan(_) => "perm-scan",
        }
    }

    /// Whether this baseline needs read-modify-write registers.
    pub fn uses_rmw(&self) -> bool {
        matches!(self, WaBaselineKind::Tas)
    }
}

/// Summary of one Write-All execution.
///
/// Equality is field-for-field — what the scenario-equivalence suite
/// asserts between a legacy-options run and its lowered [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaReport {
    /// The certification outcome (all cells written?).
    pub certified: CertifyOutcome,
    /// `true` iff certification succeeded.
    pub complete: bool,
    /// Shared-memory traffic.
    pub mem_work: MemWork,
    /// Local basic operations.
    pub local_work: u64,
    /// Total actions executed.
    pub total_steps: u64,
    /// Pids crashed by injection.
    pub crashed: Vec<usize>,
    /// Pids restarted after a crash (empty without a restart plan; always
    /// empty for threaded runs).
    pub restarted: Vec<usize>,
    /// `true` when all surviving processes terminated within limits.
    pub completed: bool,
    /// Algorithm label for table rows.
    pub label: &'static str,
}

impl WaReport {
    /// Total work (Definition 2.5).
    pub fn work(&self) -> u64 {
        self.mem_work.total() + self.local_work
    }

    /// Writes issued per array cell (`≥ 1.0` when complete; the redundancy
    /// of the algorithm).
    pub fn redundancy(&self) -> f64 {
        if self.certified.n == 0 {
            return 0.0;
        }
        self.mem_work.writes as f64 / self.certified.n as f64
    }
}

/// Runs `WA_IterativeKK(ε)` in the deterministic simulator.
///
/// # Examples
///
/// ```
/// use amo_iterative::IterSimOptions;
/// use amo_write_all::{run_wa_simulated, WaConfig};
///
/// let config = WaConfig::new(500, 2, 1)?;
/// let report = run_wa_simulated(&config, IterSimOptions::round_robin());
/// assert!(report.complete);
/// # Ok::<(), amo_core::ConfigError>(())
/// ```
pub fn run_wa_simulated(config: &WaConfig, options: IterSimOptions) -> WaReport {
    run_wa_scenario(config, &options.to_scenario())
}

/// Runs `WA_IterativeKK(ε)` under an explicit [`ScenarioSpec`] — the
/// spec-first twin of [`run_wa_simulated`]. The epoch-cache opt-in that
/// every caller used to wire by hand is handled by the generic driver.
pub fn run_wa_scenario(config: &WaConfig, spec: &ScenarioSpec) -> WaReport {
    let layout = config.layout();
    let mem = VecRegisters::new(layout.cells());
    let fleet: Vec<WaIterativeProcess> = (1..=config.m())
        .map(|pid| WaIterativeProcess::new(pid, config.iter(), layout.clone()))
        .collect();
    let (exec, _slots, mem) = amo_sim::run_scenario(mem, fleet, spec);
    let certified = certify_snapshot(&mem.snapshot(), layout.wa_base(), config.n());
    wa_report(exec, certified, "wa-iterative-kk")
}

/// Assembles a [`WaReport`] from an execution and its certification.
fn wa_report(exec: Execution, certified: CertifyOutcome, label: &'static str) -> WaReport {
    WaReport {
        complete: certified.complete,
        certified,
        mem_work: exec.mem_work,
        local_work: exec.local_work,
        total_steps: exec.total_steps,
        crashed: exec.crashed,
        restarted: exec.restarted,
        completed: exec.completed,
        label,
    }
}

/// The scenario-registry entries of the Write-All process family: the
/// process-agnostic lockstep adversary applies to every kind (historically
/// inexpressible for the scan baselines), and `WA_IterativeKK`
/// additionally wires its announcement-epoch cache into the driver hook.
impl ScenarioHooks for WaIterativeProcess {
    fn adversary(name: &str) -> Option<Box<dyn Scheduler<Self>>> {
        amo_core::generic_adversary(name)
    }

    fn set_epoch_cache(&mut self, enabled: bool) {
        WaIterativeProcess::set_epoch_cache(self, enabled);
    }
}

/// Registers the process-agnostic adversaries (via
/// [`amo_core::generic_adversary`]) for a plain (cache-free) Write-All
/// baseline process type.
macro_rules! generic_adversaries_scenario {
    ($($ty:ty),+ $(,)?) => {$(
        impl ScenarioHooks for $ty {
            fn adversary(name: &str) -> Option<Box<dyn Scheduler<Self>>> {
                amo_core::generic_adversary(name)
            }
        }
    )+};
}

generic_adversaries_scenario!(SequentialWa, StaticPartitionWa, TasWa, PermutationScanWa);

/// Runs `WA_IterativeKK(ε)` on OS threads.
pub fn run_wa_threads(config: &WaConfig, crash_plan: CrashPlan, order: MemOrder) -> WaReport {
    let layout = config.layout();
    let mem = AtomicRegisters::new(layout.cells(), order);
    let fleet: Vec<WaIterativeProcess> = (1..=config.m())
        .map(|pid| WaIterativeProcess::new(pid, config.iter(), layout.clone()))
        .collect();
    let exec = ThreadSpec::new()
        .with_crash_plan(crash_plan)
        .run(&mem, fleet);
    let certified = certify_snapshot(&mem.snapshot(), layout.wa_base(), config.n());
    WaReport {
        complete: certified.complete,
        certified,
        mem_work: exec.mem_work,
        local_work: exec.local_work,
        total_steps: exec.per_proc_steps.iter().sum(),
        crashed: exec.crashed,
        restarted: Vec::new(),
        completed: exec.completed,
        label: "wa-iterative-kk",
    }
}

/// Runs a Write-All baseline in the simulator.
///
/// For [`WaBaselineKind::Sequential`] the fleet is a single process
/// regardless of `m`.
pub fn run_baseline_simulated(
    kind: WaBaselineKind,
    n: usize,
    m: usize,
    options: IterSimOptions,
) -> WaReport {
    run_baseline_scenario(kind, n, m, &options.to_scenario())
}

/// Runs a Write-All baseline under an explicit [`ScenarioSpec`] — the
/// spec-first twin of [`run_baseline_simulated`], through which the
/// scenario matrix drives cells like lockstep or bursty blocks over the
/// scan baselines.
pub fn run_baseline_scenario(
    kind: WaBaselineKind,
    n: usize,
    m: usize,
    spec: &ScenarioSpec,
) -> WaReport {
    assert!(n > 0 && m > 0, "need jobs and processes");
    let cells = baseline_cells(kind.uses_rmw(), n);
    let mem = VecRegisters::new(cells);
    fn go<P: ScenarioProcess>(
        mem: VecRegisters,
        fleet: Vec<P>,
        spec: &ScenarioSpec,
    ) -> (Execution, VecRegisters) {
        let (exec, _slots, mem) = amo_sim::run_scenario(mem, fleet, spec);
        (exec, mem)
    }
    let (exec, mem) = match kind {
        WaBaselineKind::Sequential => go(mem, vec![SequentialWa::new(1, n as u64)], spec),
        WaBaselineKind::StaticPartition => {
            let fleet: Vec<_> = (1..=m)
                .map(|p| StaticPartitionWa::new(p, m, n as u64))
                .collect();
            go(mem, fleet, spec)
        }
        WaBaselineKind::Tas => {
            let fleet: Vec<_> = (1..=m).map(|p| TasWa::new(p, m, n as u64)).collect();
            go(mem, fleet, spec)
        }
        WaBaselineKind::PermutationScan(seed) => {
            let fleet: Vec<_> = (1..=m)
                .map(|p| PermutationScanWa::new(p, n as u64, seed))
                .collect();
            go(mem, fleet, spec)
        }
    };
    let certified = certify_snapshot(&mem.snapshot(), 0, n);
    wa_report(exec, certified, kind.label())
}

/// Runs a Write-All baseline on OS threads.
pub fn run_baseline_threads(
    kind: WaBaselineKind,
    n: usize,
    m: usize,
    crash_plan: CrashPlan,
    order: MemOrder,
) -> WaReport {
    assert!(n > 0 && m > 0, "need jobs and processes");
    let cells = baseline_cells(kind.uses_rmw(), n);
    let spec = ThreadSpec::new()
        .with_crash_plan(crash_plan)
        .with_order(order);
    let mem = spec.alloc(cells);
    let exec = match kind {
        WaBaselineKind::Sequential => spec.run(&mem, vec![SequentialWa::new(1, n as u64)]),
        WaBaselineKind::StaticPartition => {
            let fleet: Vec<_> = (1..=m)
                .map(|p| StaticPartitionWa::new(p, m, n as u64))
                .collect();
            spec.run(&mem, fleet)
        }
        WaBaselineKind::Tas => {
            let fleet: Vec<_> = (1..=m).map(|p| TasWa::new(p, m, n as u64)).collect();
            spec.run(&mem, fleet)
        }
        WaBaselineKind::PermutationScan(seed) => {
            let fleet: Vec<_> = (1..=m)
                .map(|p| PermutationScanWa::new(p, n as u64, seed))
                .collect();
            spec.run(&mem, fleet)
        }
    };
    let certified = certify_snapshot(&mem.snapshot(), 0, n);
    WaReport {
        complete: certified.complete,
        certified,
        mem_work: exec.mem_work,
        local_work: exec.local_work,
        total_steps: exec.per_proc_steps.iter().sum(),
        crashed: exec.crashed,
        restarted: Vec::new(),
        completed: exec.completed,
        label: kind.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_iterative_completes_no_crashes() {
        let config = WaConfig::new(300, 3, 1).unwrap();
        let report = run_wa_simulated(&config, IterSimOptions::round_robin());
        assert!(report.complete, "missing {:?}", report.certified.missing);
        assert!(report.completed);
        assert!(report.crashed.is_empty());
        assert!(report.redundancy() >= 1.0);
    }

    #[test]
    fn wa_iterative_completes_under_crashes() {
        let config = WaConfig::new(300, 4, 1).unwrap();
        let options = IterSimOptions::random(11).with_crash_plan(CrashPlan::at_steps([
            (1usize, 50u64),
            (2, 200),
            (3, 700),
        ]));
        let report = run_wa_simulated(&config, options);
        assert_eq!(report.crashed, vec![1, 2, 3]);
        assert!(report.complete, "survivor finishes everything");
    }

    #[test]
    fn static_partition_fails_under_crash() {
        let report = run_baseline_simulated(
            WaBaselineKind::StaticPartition,
            100,
            4,
            IterSimOptions::round_robin().with_crash_plan(CrashPlan::at_steps([(2usize, 3u64)])),
        );
        assert!(!report.complete, "fault-intolerant baseline must fail");
        assert!(!report.certified.missing.is_empty());
    }

    #[test]
    fn tas_baseline_completes_under_crash_of_non_survivors() {
        let report = run_baseline_simulated(
            WaBaselineKind::Tas,
            64,
            3,
            IterSimOptions::random(3).with_crash_plan(CrashPlan::at_steps([(1usize, 10u64)])),
        );
        // TAS claims are lost with the crashed claimer: cells claimed but
        // not written stay 0 — the known weakness of naive TAS claiming
        // (Malewicz's real algorithm recovers them; our stand-in documents
        // the gap). Without crashes it always completes:
        let clean = run_baseline_simulated(WaBaselineKind::Tas, 64, 3, IterSimOptions::random(3));
        assert!(clean.complete);
        // Under a crash, completion depends on timing; both outcomes are
        // legal for the stand-in, but the report must be internally
        // consistent.
        assert_eq!(report.complete, report.certified.missing.is_empty());
    }

    #[test]
    fn permutation_scan_completes_under_crashes() {
        let report = run_baseline_simulated(
            WaBaselineKind::PermutationScan(5),
            80,
            4,
            IterSimOptions::random(9).with_crash_plan(CrashPlan::at_steps([
                (1usize, 5u64),
                (2, 11),
                (3, 17),
            ])),
        );
        assert!(report.complete, "any survivor covers all cells");
    }

    #[test]
    fn sequential_baseline_work_is_n_writes() {
        let report = run_baseline_simulated(
            WaBaselineKind::Sequential,
            128,
            1,
            IterSimOptions::round_robin(),
        );
        assert!(report.complete);
        assert_eq!(report.mem_work.writes, 128);
        assert!((report.redundancy() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn wa_threads_complete() {
        let config = WaConfig::new(400, 4, 1).unwrap();
        let report = run_wa_threads(&config, CrashPlan::none(), MemOrder::SeqCst);
        assert!(report.complete);
    }

    #[test]
    fn baseline_threads_complete() {
        for kind in [
            WaBaselineKind::Sequential,
            WaBaselineKind::StaticPartition,
            WaBaselineKind::Tas,
            WaBaselineKind::PermutationScan(1),
        ] {
            let report = run_baseline_threads(kind, 100, 3, CrashPlan::none(), MemOrder::SeqCst);
            assert!(report.complete, "{} must complete crash-free", kind.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            WaBaselineKind::Sequential,
            WaBaselineKind::StaticPartition,
            WaBaselineKind::Tas,
            WaBaselineKind::PermutationScan(0),
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
