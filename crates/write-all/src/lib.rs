//! **WA_IterativeKK(ε)** — the Write-All algorithm of paper §7 (Fig. 4) —
//! plus read/write and test-and-set baselines and a completeness certifier.
//!
//! The Write-All problem (Kanellakis & Shvartsman): *"using m processors,
//! write 1's to all locations of an array of size n"*, despite up to
//! `m − 1` crash-stop failures. Unlike at-most-once, duplicated writes are
//! allowed — the challenge is completing all of them with low total work.
//!
//! `WA_IterativeKK(ε)` is `IterativeKK(ε)` with two changes (§7):
//!
//! 1. every stage outputs `FREE` instead of `FREE \ TRY` (nothing may be
//!    dropped just because somebody announced it), and
//! 2. after the last stage, each process simply performs every job left in
//!    its final output set (Fig. 4 lines 14–16) — possibly redundantly.
//!
//! Work is `O(n + m^{3+ε}·log n)` (Theorem 7.1): work-optimal for
//! `m = O((n / log n)^{1/(3+ε)})`, improving the range of Malewicz's
//! algorithm and — unlike it — using no test-and-set.
//!
//! # Baselines
//!
//! * [`SequentialWa`] — one process, `n` writes (the absolute floor).
//! * [`StaticPartitionWa`] — split `n/m`, no fault tolerance: *fails* to
//!   complete under crashes (shown in experiment E5).
//! * [`TasWa`] — test-and-set claiming, standing in for Malewicz's
//!   TAS-based algorithm (DESIGN.md substitution table).
//! * [`PermutationScanWa`] — Anderson–Woll-flavoured: every process covers
//!   all of `1..=n` in its own seeded random permutation, checking before
//!   writing. Random permutations substitute for the contention-optimal
//!   deterministic ones, which are not constructible in polynomial time
//!   (paper §1).
//!
//! # Examples
//!
//! ```
//! use amo_write_all::{run_wa_simulated, WaConfig};
//! use amo_iterative::IterSimOptions;
//!
//! let config = WaConfig::new(1_000, 3, 1)?;
//! let report = run_wa_simulated(&config, IterSimOptions::random(3));
//! assert!(report.complete, "all n cells written");
//! # Ok::<(), amo_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod certify;
mod runner;
mod wa;

pub use baselines::{PermutationScanWa, SequentialWa, StaticPartitionWa, TasWa};
pub use certify::{certify, CertifyOutcome};
pub use runner::{
    run_baseline_scenario, run_baseline_simulated, run_baseline_threads, run_wa_scenario,
    run_wa_simulated, run_wa_threads, WaBaselineKind, WaConfig, WaReport,
};
pub use wa::{WaIterativeProcess, WaLayout};
