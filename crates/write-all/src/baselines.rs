//! Write-All baselines (§1/§7 comparison set).
//!
//! All baselines use the layout `wa[1..n]` at cells `0..n`; [`TasWa`]
//! additionally uses claim bits at cells `n..2n`.

use amo_sim::{Process, Registers, StepEvent};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cells needed by a baseline over `n` jobs: `n` for the `wa` array, plus
/// `n` claim bits for the test-and-set baseline.
pub(crate) fn baseline_cells(uses_claims: bool, n: usize) -> usize {
    if uses_claims {
        2 * n
    } else {
        n
    }
}

#[inline]
fn wa_cell(job: u64) -> usize {
    job as usize - 1
}

#[inline]
fn claim_cell(n: u64, job: u64) -> usize {
    (n + job) as usize - 1
}

/// One process writes every cell: the `n`-writes floor any parallel
/// algorithm is compared against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SequentialWa {
    pid: usize,
    n: u64,
    next: u64,
    terminated: bool,
}

impl SequentialWa {
    /// Creates the sequential writer.
    pub fn new(pid: usize, n: u64) -> Self {
        Self {
            pid,
            n,
            next: 1,
            terminated: false,
        }
    }
}

impl<R: Registers + ?Sized> Process<R> for SequentialWa {
    fn step(&mut self, mem: &R) -> StepEvent {
        if self.next > self.n {
            self.terminated = true;
            return StepEvent::Terminated;
        }
        let cell = wa_cell(self.next);
        mem.write(cell, 1);
        self.next += 1;
        StepEvent::Write { cell }
    }

    fn pid(&self) -> usize {
        self.pid
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn supports_restart(&self) -> bool {
        true
    }

    fn on_restart(&mut self, _mem: &R) {
        // The scan position was volatile: start over from job 1 (writes of
        // 1 are idempotent).
        self.next = 1;
        self.terminated = false;
    }
}

/// Static partition: process `p` writes its own `n/m` chunk and stops.
///
/// Optimal work (`n` writes total, zero coordination) but **no fault
/// tolerance**: if any process crashes, its chunk is never written and the
/// Write-All certification fails. Experiment E5 uses it to show why the
/// problem is non-trivial.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StaticPartitionWa {
    pid: usize,
    lo: u64,
    next: u64,
    hi: u64,
    terminated: bool,
}

impl StaticPartitionWa {
    /// Creates the writer for chunk `p` of `m` over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `pid ∉ 1..=m` or `m == 0`.
    pub fn new(pid: usize, m: usize, n: u64) -> Self {
        assert!(m > 0 && (1..=m).contains(&pid));
        let lo = (pid as u64 - 1) * n / m as u64 + 1;
        let hi = pid as u64 * n / m as u64;
        Self {
            pid,
            lo,
            next: lo,
            hi,
            terminated: false,
        }
    }
}

impl<R: Registers + ?Sized> Process<R> for StaticPartitionWa {
    fn step(&mut self, mem: &R) -> StepEvent {
        if self.next > self.hi {
            self.terminated = true;
            return StepEvent::Terminated;
        }
        let cell = wa_cell(self.next);
        mem.write(cell, 1);
        self.next += 1;
        StepEvent::Write { cell }
    }

    fn pid(&self) -> usize {
        self.pid
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn supports_restart(&self) -> bool {
        true
    }

    fn on_restart(&mut self, _mem: &R) {
        self.next = self.lo;
        self.terminated = false;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TasPhase {
    Claim,
    WriteWon { job: u64 },
}

/// Test-and-set claiming: scan all jobs (from a per-process offset), claim
/// each with an atomic swap on its claim bit, and write only the cells won.
///
/// This is the RMW-based comparator the paper's §1 mentions ("one can
/// associate a test-and-set bit with each job") and our stand-in for
/// Malewicz's TAS-based algorithm: wins are disjoint, so `wa` writes total
/// exactly `n`, but every process still scans all `n` claim bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TasWa {
    pid: usize,
    n: u64,
    start: u64,
    scanned: u64,
    phase: TasPhase,
    terminated: bool,
}

impl TasWa {
    /// Creates the claimer for process `p` of `m`.
    ///
    /// # Panics
    ///
    /// Panics if `pid ∉ 1..=m` or `m == 0` or `n == 0`.
    pub fn new(pid: usize, m: usize, n: u64) -> Self {
        assert!(m > 0 && (1..=m).contains(&pid) && n > 0);
        let start = (pid as u64 - 1) * n / m as u64;
        Self {
            pid,
            n,
            start,
            scanned: 0,
            phase: TasPhase::Claim,
            terminated: false,
        }
    }

    fn current_job(&self) -> u64 {
        (self.start + self.scanned) % self.n + 1
    }
}

impl<R: Registers + ?Sized> Process<R> for TasWa {
    fn step(&mut self, mem: &R) -> StepEvent {
        match self.phase {
            TasPhase::Claim => {
                if self.scanned >= self.n {
                    self.terminated = true;
                    return StepEvent::Terminated;
                }
                let job = self.current_job();
                let cell = claim_cell(self.n, job);
                let prev = mem.swap(cell, 1);
                if prev == 0 {
                    self.phase = TasPhase::WriteWon { job };
                } else {
                    self.scanned += 1;
                }
                StepEvent::Rmw { cell }
            }
            TasPhase::WriteWon { job } => {
                let cell = wa_cell(job);
                mem.write(cell, 1);
                self.scanned += 1;
                self.phase = TasPhase::Claim;
                StepEvent::Write { cell }
            }
        }
    }

    fn pid(&self) -> usize {
        self.pid
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn supports_restart(&self) -> bool {
        true
    }

    fn on_restart(&mut self, _mem: &R) {
        // Rescan everything: claim bits won before the crash are durable in
        // shared memory, so re-claiming is refused there and only cells
        // whose claim was lost to the blackout can be re-won.
        self.scanned = 0;
        self.phase = TasPhase::Claim;
        self.terminated = false;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ScanPhase {
    Check,
    Write { job: u64 },
}

/// Anderson–Woll-flavoured read/write baseline: each process traverses all
/// of `1..=n` in its own seeded random permutation, reading each cell and
/// writing only if it is still zero.
///
/// Tolerates any `f ≤ m − 1` crashes (every survivor covers everything).
/// Random permutations have contention `O(q log q)` w.h.p. — the standard
/// substitute for the deterministic low-contention families that are not
/// constructible in polynomial time (paper §1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PermutationScanWa {
    pid: usize,
    perm: Vec<u64>,
    idx: usize,
    phase: ScanPhase,
    terminated: bool,
}

impl PermutationScanWa {
    /// Creates the scanner with a permutation derived from `seed` and `pid`.
    pub fn new(pid: usize, n: u64, seed: u64) -> Self {
        let mut perm: Vec<u64> = (1..=n).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ (pid as u64).wrapping_mul(0x9E37_79B9));
        perm.shuffle(&mut rng);
        Self {
            pid,
            perm,
            idx: 0,
            phase: ScanPhase::Check,
            terminated: false,
        }
    }
}

impl<R: Registers + ?Sized> Process<R> for PermutationScanWa {
    fn step(&mut self, mem: &R) -> StepEvent {
        match self.phase {
            ScanPhase::Check => {
                if self.idx >= self.perm.len() {
                    self.terminated = true;
                    return StepEvent::Terminated;
                }
                let job = self.perm[self.idx];
                let cell = wa_cell(job);
                if mem.read(cell) == 0 {
                    self.phase = ScanPhase::Write { job };
                } else {
                    self.idx += 1;
                }
                StepEvent::Read { cell }
            }
            ScanPhase::Write { job } => {
                let cell = wa_cell(job);
                mem.write(cell, 1);
                self.idx += 1;
                self.phase = ScanPhase::Check;
                StepEvent::Write { cell }
            }
        }
    }

    fn pid(&self) -> usize {
        self.pid
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn supports_restart(&self) -> bool {
        true
    }

    fn on_restart(&mut self, _mem: &R) {
        // Restart the permutation walk from its head; cells already 1 are
        // skipped by the check read.
        self.idx = 0;
        self.phase = ScanPhase::Check;
        self.terminated = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::certify_snapshot;
    use amo_sim::VecRegisters;

    /// Drives all processes round-robin against a caller-held memory.
    fn drive_all<P: Process<VecRegisters>>(mem: &VecRegisters, mut procs: Vec<P>) {
        let mut active: Vec<usize> = (0..procs.len()).collect();
        let mut cursor = 0usize;
        let mut guard = 0u64;
        while !active.is_empty() {
            cursor %= active.len();
            let i = active[cursor];
            if matches!(procs[i].step(mem), StepEvent::Terminated) {
                active.remove(cursor);
            } else {
                cursor += 1;
            }
            guard += 1;
            assert!(guard < 10_000_000, "baseline did not terminate");
        }
    }

    #[test]
    fn sequential_completes() {
        let n = 50u64;
        let mem = VecRegisters::new(baseline_cells(false, n as usize));
        drive_all(&mem, vec![SequentialWa::new(1, n)]);
        assert!(certify_snapshot(&mem.snapshot(), 0, n as usize).complete);
        assert_eq!(mem.work().writes, n);
    }

    #[test]
    fn static_partition_completes_without_crashes() {
        let n = 31u64;
        let m = 4;
        let mem = VecRegisters::new(baseline_cells(false, n as usize));
        let procs: Vec<_> = (1..=m).map(|p| StaticPartitionWa::new(p, m, n)).collect();
        drive_all(&mem, procs);
        assert!(certify_snapshot(&mem.snapshot(), 0, n as usize).complete);
        assert_eq!(mem.work().writes, n, "each cell written exactly once");
    }

    #[test]
    fn static_partition_chunks_cover_exactly() {
        let n = 10u64;
        let chunks: Vec<(u64, u64)> = (1..=3)
            .map(|p| {
                let w = StaticPartitionWa::new(p, 3, n);
                (w.next, w.hi)
            })
            .collect();
        assert_eq!(chunks, vec![(1, 3), (4, 6), (7, 10)]);
    }

    #[test]
    fn tas_wins_are_disjoint() {
        let n = 64u64;
        let m = 4;
        let mem = VecRegisters::new(baseline_cells(true, n as usize));
        let procs: Vec<_> = (1..=m).map(|p| TasWa::new(p, m, n)).collect();
        drive_all(&mem, procs);
        assert!(certify_snapshot(&mem.snapshot(), 0, n as usize).complete);
        assert_eq!(mem.work().writes, n, "TAS makes wa writes disjoint");
        assert_eq!(
            mem.work().rmws,
            n * m as u64,
            "every process scans all claims"
        );
    }

    #[test]
    fn permutation_scan_completes_with_bounded_writes() {
        let n = 64u64;
        let m = 3;
        let mem = VecRegisters::new(baseline_cells(false, n as usize));
        let procs: Vec<_> = (1..=m).map(|p| PermutationScanWa::new(p, n, 42)).collect();
        drive_all(&mem, procs);
        assert!(certify_snapshot(&mem.snapshot(), 0, n as usize).complete);
        let w = mem.work();
        assert!(w.writes >= n);
        assert!(w.writes <= n * m as u64);
        assert_eq!(
            w.reads,
            n * m as u64,
            "exactly one check read per slot per process"
        );
    }

    #[test]
    fn permutations_differ_across_processes() {
        let a = PermutationScanWa::new(1, 32, 7);
        let b = PermutationScanWa::new(2, 32, 7);
        assert_ne!(a.perm, b.perm);
    }
}
