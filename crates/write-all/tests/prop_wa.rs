//! Property tests: WA_IterativeKK completes the Write-All array under every
//! tested schedule and crash pattern (Theorem 7.1's correctness half), and
//! the crash-tolerant baselines do too.

use amo_iterative::IterSimOptions;
use amo_sim::CrashPlan;
use amo_write_all::{run_baseline_simulated, run_wa_simulated, WaBaselineKind, WaConfig};
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = (usize, usize, u32)> {
    (1usize..=4).prop_flat_map(|m| ((8 * m)..=400usize, Just(m), 1u32..=2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 7.1: WA_IterativeKK solves Write-All under crashes.
    #[test]
    fn wa_completes_under_crashes(
        (n, m, inv_eps) in instance(),
        seed in any::<u64>(),
        f_pick in 0usize..4,
    ) {
        let config = WaConfig::new(n, m, inv_eps).unwrap();
        let f = f_pick % m;
        let plan = CrashPlan::at_steps((1..=f).map(|p| (p, (seed % 499) * p as u64)));
        let report = run_wa_simulated(
            &config,
            IterSimOptions::random(seed).with_crash_plan(plan),
        );
        prop_assert!(report.completed, "survivors must terminate");
        prop_assert!(
            report.complete,
            "incomplete: missing {:?} (n={n} m={m})",
            report.certified.missing
        );
        prop_assert!(report.redundancy() >= 1.0);
    }

    /// The permutation-scan baseline is also crash-tolerant.
    #[test]
    fn perm_scan_completes_under_crashes(
        n in 4usize..200,
        m in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let plan = CrashPlan::at_steps((1..m).map(|p| (p, seed % 97 * p as u64)));
        let report = run_baseline_simulated(
            WaBaselineKind::PermutationScan(seed),
            n,
            m,
            IterSimOptions::random(seed).with_crash_plan(plan),
        );
        prop_assert!(report.complete);
    }

    /// Static partition completes iff nobody crashes before finishing.
    #[test]
    fn static_partition_no_crash_completes(n in 4usize..200, m in 1usize..=4) {
        let report = run_baseline_simulated(
            WaBaselineKind::StaticPartition,
            n,
            m,
            IterSimOptions::round_robin(),
        );
        prop_assert!(report.complete);
        prop_assert_eq!(report.mem_work.writes, n as u64);
    }

    /// An immediate crash of a partition owner always breaks it (for m ≥ 2
    /// and chunks that are non-empty).
    #[test]
    fn static_partition_crash_breaks(n in 8usize..200, m in 2usize..=4) {
        prop_assume!(n >= m); // every chunk non-empty
        let report = run_baseline_simulated(
            WaBaselineKind::StaticPartition,
            n,
            m,
            IterSimOptions::round_robin().with_crash_plan(CrashPlan::at_steps([(1usize, 0u64)])),
        );
        prop_assert!(!report.complete);
    }

    /// WA runs are reproducible.
    #[test]
    fn wa_reproducible((n, m, inv_eps) in instance(), seed in any::<u64>()) {
        let config = WaConfig::new(n, m, inv_eps).unwrap();
        let a = run_wa_simulated(&config, IterSimOptions::random(seed));
        let b = run_wa_simulated(&config, IterSimOptions::random(seed));
        prop_assert_eq!(a.total_steps, b.total_steps);
        prop_assert_eq!(a.mem_work, b.mem_work);
    }
}
