//! Bounded exhaustive checks for the Write-All stack on tiny instances:
//! every schedule (and crash pattern) must end with a complete array for
//! the crash-tolerant algorithms.

use amo_iterative::IterSimOptions;
use amo_sim::{explore, CrashPlan, ExploreConfig, MemoMode, VecRegisters};
use amo_write_all::{run_wa_simulated, PermutationScanWa, WaConfig};

#[test]
fn wa_iterative_tiny_instance_dense_schedule_sweep() {
    // Write-All *permits* duplicate performs (the terminal loop), so the
    // at-most-once explorer does not apply to WA_IterativeKK; instead we
    // sweep a dense grid of seeds and crash plans on a tiny instance and
    // require certified completion every single time.
    let config = WaConfig::new(6, 2, 1).unwrap();
    for seed in 0..300u64 {
        let plan = CrashPlan::random(2, 1, 40, seed);
        let r = run_wa_simulated(&config, IterSimOptions::random(seed).with_crash_plan(plan));
        assert!(r.complete, "seed {seed}: missing {:?}", r.certified.missing);
        assert!(r.completed, "seed {seed}");
    }
}

#[test]
fn perm_scan_tiny_instance_all_schedules_and_crashes() {
    let n = 4u64;
    let fleet: Vec<PermutationScanWa> = (1..=2).map(|p| PermutationScanWa::new(p, n, 9)).collect();
    let out = explore(
        VecRegisters::new(n as usize),
        fleet,
        ExploreConfig {
            max_crashes: 1,
            memo: MemoMode::StateAndHistory,
            max_states: 2_000_000,
            ..ExploreConfig::default()
        },
    );
    // perm-scan re-writes cells another process already wrote (that is its
    // design), so duplicate *performs* don't exist — it emits Writes, not
    // Performs — and the ledger stays clean.
    assert!(out.violation.is_none());
    if out.complete {
        assert!(out.terminal_states > 0);
    }
}
