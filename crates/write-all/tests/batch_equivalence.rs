//! Fast-path equivalence for `WA_IterativeKK(ε)`: the batched write loops
//! (`WritingSpan`, `FinalLoop`) must be indistinguishable from
//! single-stepping — same writes, same performs, same certification.

use amo_iterative::IterSimOptions;
use amo_sim::CrashPlan;
use amo_write_all::{run_wa_simulated, WaConfig};
use proptest::prelude::*;

fn assert_wa_eq(config: &WaConfig, base: IterSimOptions, what: &str) {
    let fast = run_wa_simulated(config, base.clone());
    let reference = run_wa_simulated(config, base.single_step());
    assert_eq!(
        fast.complete, reference.complete,
        "{what}: completion differs"
    );
    assert_eq!(
        fast.total_steps, reference.total_steps,
        "{what}: total_steps differ"
    );
    assert_eq!(
        fast.mem_work, reference.mem_work,
        "{what}: shared work differs"
    );
    assert_eq!(
        fast.local_work, reference.local_work,
        "{what}: local work differs"
    );
    assert_eq!(fast.crashed, reference.crashed, "{what}: crashes differ");
    assert_eq!(
        fast.certified.missing, reference.certified.missing,
        "{what}: certification"
    );
}

#[test]
fn batched_write_all_matches_reference() {
    for &(n, m) in &[(64usize, 2usize), (200, 4), (333, 3)] {
        let config = WaConfig::new(n, m, 1).expect("valid config");
        assert_wa_eq(
            &config,
            IterSimOptions::round_robin_batched(),
            &format!("wa n={n} m={m} batched rr"),
        );
        assert_wa_eq(
            &config,
            IterSimOptions::block(7, 19),
            &format!("wa n={n} m={m} block"),
        );
    }
}

#[test]
fn batched_write_all_with_crashes_matches_reference() {
    let config = WaConfig::new(150, 4, 1).expect("valid config");
    let plan = CrashPlan::at_steps([(2usize, 25u64), (4, 90)]);
    assert_wa_eq(
        &config,
        IterSimOptions::round_robin_batched().with_crash_plan(plan),
        "wa crashes under batched rr",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random Write-All configs under random quanta stay batch-invariant.
    #[test]
    fn random_wa_configs_are_batch_invariant(
        n in 4usize..250,
        m in 2usize..5,
        quantum in 2u64..200,
    ) {
        prop_assume!(n >= m);
        let config = WaConfig::new(n, m, 1).expect("valid");
        let base = IterSimOptions::round_robin().with_quantum(quantum);
        let fast = run_wa_simulated(&config, base.clone());
        let reference = run_wa_simulated(&config, base.single_step());
        prop_assert_eq!(fast.complete, reference.complete);
        prop_assert_eq!(fast.total_steps, reference.total_steps);
        prop_assert_eq!(fast.mem_work, reference.mem_work);
        prop_assert_eq!(fast.local_work, reference.local_work);
    }
}
